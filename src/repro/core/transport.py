"""Zero-copy shared-memory shard transport for fleet and campaign dispatch.

Every fleet dispatch used to pay ``pickle.dumps``/``loads`` on both sides
of the process boundary for every shard: full ``TransmissionLine``
profiles and modifier stacks outbound, enrollment fingerprints and
averaged-capture waveforms inbound.  The paper's scaling argument
(sections I and V) is that one shared iTDR datapath protects many buses
by moving *descriptors* around a stationary sample stream; this module
applies the same discipline to the process boundary:

* a parent-owned :class:`ShardArena` — one or more
  ``multiprocessing.shared_memory`` segments managed by a bump
  allocator, recycled across scans (``reset``) and unlinked
  deterministically on ``close``;
* :class:`BufferRef`/:class:`ArrayRef` descriptors — (segment name,
  offset, length/dtype/shape) tuples that pickle in O(1) regardless of
  how many megabytes they describe;
* protocol-5 **out-of-band** packing (:func:`pack_into`): every numpy
  buffer is detached via ``PickleBuffer`` and lands in the arena as a
  raw copy instead of traversing the serializer, and the residual
  pickle stream is placed in the arena too — what the shard task
  carries is a payload of pure descriptors.  Note the transport layer
  is the *only* place allowed to move off protocol 4; every
  ``canonical_bytes()`` in the package stays at protocol 4 because
  those bytes are pinned by regression tests;
* a worker-side content-digest cache (:func:`materialize`): payloads
  carry a digest of their exact content, and a worker that has already
  materialized that digest skips both the segment read and the
  ``pickle.loads`` — re-scanning an unchanged fleet ships only seeds,
  indices, and O(1) descriptors.

The non-negotiable invariant, pinned by
``tests/property/test_transport_equivalence.py``: the transport may
change *how* bytes cross the boundary, never *which* values arrive —
scan, identify, and campaign outcomes are byte-identical across
``transport="pickle"`` and ``transport="shm"`` and across shard counts.
Float arrays traverse the arena as raw bitwise copies, so this holds by
construction; the property suite keeps it held.

Lifetime rules (the leak contract the ``/dev/shm`` fixture in
``tests/conftest.py`` enforces):

* segments are created only by the parent (workers never own shared
  memory, so a crashed or OOM-killed worker cannot orphan a segment);
* worker-side attaches are unregistered from the multiprocessing
  ``resource_tracker`` (Python < 3.13 would otherwise *unlink* a
  still-owned segment when any attaching process exits);
* ``ShardArena.close()`` unlinks every segment and is idempotent; the
  fleet executor calls it from ``close()`` and from the terminal rung of
  the PR-4 recovery ladder.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "ArrayRef",
    "BufferRef",
    "ShardArena",
    "ShmPayload",
    "TRANSPORT_COUNTER_KEYS",
    "TransportStats",
    "content_digest",
    "materialize",
    "pack_into",
    "pack_seed",
    "read_array",
    "unpack_seed",
    "shared_memory_available",
    "unpack",
    "worker_transport_stats",
    "writable_array",
]

#: Prefix of every segment this package creates; the leak fixture and
#: the TESTING.md diagnosis recipe both key on it.
SEGMENT_PREFIX = "repro-"

#: Transport pickling happens at protocol 5 so numpy buffers detach
#: out-of-band.  ``canonical_bytes()`` everywhere stays at protocol 4 —
#: those bytes are pinned by regression tests and MUST NOT follow.
PICKLE_PROTOCOL = 5

#: Buffer placements are aligned so worker-side views land on cache-line
#: boundaries (and any dtype's alignment requirement is met).
_ALIGNMENT = 64

#: Smallest segment the allocator creates; growth doubles from here.
_MIN_SEGMENT_BYTES = 1 << 16

#: Counters every :class:`ShardArena`/executor surfaces through
#: ``Telemetry.snapshot()["health"]["transport"]`` (zeroed when unused).
TRANSPORT_COUNTER_KEYS = (
    "segments_created",
    "segments_reused",
    "segments_unlinked",
    "bytes_moved",
    "bytes_referenced",
    "payloads_packed",
    "payloads_reused",
    "worker_materializations",
    "worker_cache_hits",
)

_segment_counter = itertools.count()
_availability: Optional[bool] = None


def _new_segment_name() -> str:
    """A process-unique ``repro-`` segment name (pid + running counter)."""
    return f"{SEGMENT_PREFIX}{os.getpid()}-{next(_segment_counter)}"


def shared_memory_available() -> bool:
    """Whether this platform can create and map POSIX shared memory.

    Probed once per process by creating and immediately unlinking a tiny
    segment; platforms without ``/dev/shm`` (or with it mounted
    unwritable) report False and the fleet executor's ``transport="auto"``
    falls back to the pickle reference path.
    """
    global _availability
    if _availability is None:
        try:
            seg = shared_memory.SharedMemory(
                create=True, size=16, name=_new_segment_name()
            )
        except (OSError, ValueError):
            _availability = False
        else:
            seg.close()
            seg.unlink()
            _availability = True
    return _availability


# ----------------------------------------------------------------------
# descriptors: what actually crosses the process boundary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BufferRef:
    """One raw byte range inside a named shared-memory segment.

    The O(1) stand-in for an out-of-band pickle buffer: pickling a
    ``BufferRef`` costs the same whether it describes 80 bytes or 80
    megabytes.
    """

    segment: str
    offset: int
    length: int


@dataclass(frozen=True)
class ArrayRef:
    """A typed ndarray region inside a named shared-memory segment.

    Used for *inbound* results: the parent reserves the region
    (:meth:`ShardArena.reserve`), the worker fills it through
    :func:`writable_array`, and the descriptor — not the samples — rides
    the return pickle home.
    """

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        """Byte length of the described array."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ShmPayload:
    """One packed object: descriptors for its stream and buffer bytes.

    Both the protocol-5 pickle stream and the detached out-of-band
    buffers live in the arena — the payload itself is a handful of
    (segment, offset, length) triples plus a digest string, so its own
    pickle cost is O(1) in the object it describes.  ``digest``
    addresses the exact content (stream bytes and raw buffer bytes), so
    workers can cache the materialized object and skip the read entirely
    when the same content ships again.
    """

    stream_ref: BufferRef
    buffers: Tuple[BufferRef, ...]
    digest: str

    @property
    def referenced_bytes(self) -> int:
        """Out-of-band buffer bytes carried by shared memory."""
        return sum(ref.length for ref in self.buffers)


# ----------------------------------------------------------------------
# segment attachment (shared by parent and workers)
# ----------------------------------------------------------------------
#: Process-local map of attached (or owned) segments by name.  The
#: parent's arenas register the segments they own here, so the serial
#: backend and the serial-fallback recovery rung resolve descriptors
#: without a second mapping; workers populate it lazily on first touch.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    seg = _ATTACHED.get(name)
    if seg is None:
        seg = shared_memory.SharedMemory(name=name)
        # Python < 3.13 registers *attaches* with the resource tracker,
        # which unlinks the segment when the attaching process exits —
        # destroying memory the parent still owns.  Attachers must not
        # track; the owning arena alone decides when to unlink.
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        _ATTACHED[name] = seg
    return seg


def read_array(ref: ArrayRef) -> np.ndarray:
    """Copy the described array out of shared memory (parent side).

    Returns an owning copy so the caller can outlive ``reset()``/
    ``close()`` of the arena; the transient view is dropped before
    returning so the segment keeps no exported pointers.
    """
    seg = _attach(ref.segment)
    count = 1
    for dim in ref.shape:
        count *= dim
    view = np.frombuffer(
        seg.buf, dtype=ref.dtype, count=count, offset=ref.offset
    )
    out = view.reshape(ref.shape).copy()
    del view
    return out


def writable_array(ref: ArrayRef) -> np.ndarray:
    """A writable view of a reserved result region (worker side).

    The caller must drop the view when done (holding it past the task
    keeps an exported pointer into the segment).
    """
    seg = _attach(ref.segment)
    count = 1
    for dim in ref.shape:
        count *= dim
    return np.frombuffer(
        seg.buf, dtype=ref.dtype, count=count, offset=ref.offset
    ).reshape(ref.shape)


# ----------------------------------------------------------------------
# the parent-owned arena
# ----------------------------------------------------------------------
class ShardArena:
    """A parent-owned pool of shared-memory segments with bump allocation.

    One arena serves one role for one executor (the fleet layer keeps a
    *static* arena for content-addressed payloads that survive across
    scans — lines, fingerprints — and a *scratch* arena rewound before
    every dispatch for per-scan payloads and result reservations).

    Args:
        initial_bytes: Size hint for the first segment; the allocator
            rounds every segment up to at least :data:`_MIN_SEGMENT_BYTES`
            and doubles on growth, so an undersized hint costs extra
            segments, never a failure.
        counters: Optional shared counter dict (keys from
            :data:`TRANSPORT_COUNTER_KEYS`); arenas of one executor share
            one dict so telemetry sees a single transport ledger.
    """

    def __init__(
        self,
        initial_bytes: int = _MIN_SEGMENT_BYTES,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        if initial_bytes < 1:
            raise ValueError("initial_bytes must be >= 1")
        self._initial_bytes = initial_bytes
        self._segments: List[shared_memory.SharedMemory] = []
        self._used: List[int] = []
        self._closed = False
        self.counters = (
            counters
            if counters is not None
            else {key: 0 for key in TRANSPORT_COUNTER_KEYS}
        )

    # -- allocation -----------------------------------------------------
    @property
    def segment_names(self) -> Tuple[str, ...]:
        """Names of every live segment this arena owns."""
        return tuple(seg.name for seg in self._segments)

    @property
    def capacity_bytes(self) -> int:
        """Total bytes across every owned segment."""
        return sum(seg.size for seg in self._segments)

    def _allocate(self, nbytes: int) -> Tuple[shared_memory.SharedMemory, int]:
        """Reserve ``nbytes`` (aligned); grows by doubling segments."""
        if self._closed:
            raise RuntimeError("arena is closed")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        for i, seg in enumerate(self._segments):
            start = -(-self._used[i] // _ALIGNMENT) * _ALIGNMENT
            if start + nbytes <= seg.size:
                self._used[i] = start + nbytes
                return seg, start
        size = max(
            self._initial_bytes,
            _MIN_SEGMENT_BYTES,
            2 * self.capacity_bytes,
            nbytes,
        )
        seg = shared_memory.SharedMemory(
            create=True, size=size, name=_new_segment_name()
        )
        _ATTACHED[seg.name] = seg
        self._segments.append(seg)
        self._used.append(nbytes)
        self.counters["segments_created"] += 1
        return seg, 0

    def place_buffer(self, raw, counted: bool = True) -> BufferRef:
        """Raw-copy one buffer into the arena; returns its descriptor.

        ``counted=False`` placements (pickle streams) are accounted under
        ``bytes_moved`` by the caller instead of ``bytes_referenced``, so
        the two counters split cleanly into object-structure bytes versus
        bulk array bytes.
        """
        data = memoryview(raw).cast("B")
        seg, offset = self._allocate(data.nbytes)
        seg.buf[offset:offset + data.nbytes] = data
        if counted:
            self.counters["bytes_referenced"] += data.nbytes
        return BufferRef(
            segment=seg.name, offset=offset, length=data.nbytes
        )

    def reserve(self, shape: Tuple[int, ...], dtype: str) -> ArrayRef:
        """Reserve an uninitialised result region for a worker to fill."""
        ref = ArrayRef(
            segment="", dtype=str(np.dtype(dtype)), shape=tuple(shape),
            offset=0,
        )
        seg, offset = self._allocate(ref.nbytes)
        self.counters["bytes_referenced"] += ref.nbytes
        return ArrayRef(
            segment=seg.name, dtype=ref.dtype, shape=ref.shape,
            offset=offset,
        )

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Rewind every segment for the next scan (contents recycled).

        Descriptors issued before a reset are invalidated; the fleet
        layer only resets between dispatches, when no descriptor from
        the previous scan is live.
        """
        if self._used and any(self._used):
            self.counters["segments_reused"] += len(self._segments)
        self._used = [0] * len(self._segments)

    def close(self) -> None:
        """Unlink every owned segment (idempotent).

        Called on executor close and on the terminal rung of the
        recovery ladder; after this no descriptor into the arena can
        resolve anywhere.
        """
        if self._closed:
            return
        self._closed = True
        for seg in self._segments:
            _ATTACHED.pop(seg.name, None)
            try:
                seg.close()
            except BufferError:  # pragma: no cover - stray live view
                pass
            seg.unlink()
            self.counters["segments_unlinked"] += 1
        self._segments = []
        self._used = []

    def __enter__(self) -> "ShardArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# out-of-band packing
# ----------------------------------------------------------------------
def pack_into(
    arena: ShardArena, obj, digest: Optional[str] = None
) -> ShmPayload:
    """Pack ``obj`` for the trip out: everything lands in the arena.

    Protocol-5 pickling with a ``buffer_callback`` detaches every numpy
    buffer from the stream; each lands in the arena as a raw bitwise
    copy, and the residual stream (object structure, scalars, strings)
    is placed right behind them — what the task pickle carries is a
    payload of pure descriptors.  ``digest`` defaults to a hash of the
    exact content (stream plus buffers), which is what keys the
    worker-side cache — callers with a cheaper content marker (e.g. a
    profile hash) may supply their own, as long as it changes whenever
    the content does.
    """
    raw: List[pickle.PickleBuffer] = []
    stream = pickle.dumps(obj, protocol=PICKLE_PROTOCOL,
                          buffer_callback=raw.append)
    buffers = []
    hasher = None if digest is not None else hashlib.blake2b(digest_size=16)
    if hasher is not None:
        hasher.update(stream)
    for buf in raw:
        data = buf.raw()
        if hasher is not None:
            hasher.update(data)
        buffers.append(arena.place_buffer(data))
    stream_ref = arena.place_buffer(stream, counted=False)
    arena.counters["bytes_moved"] += len(stream)
    arena.counters["payloads_packed"] += 1
    return ShmPayload(
        stream_ref=stream_ref,
        buffers=tuple(buffers),
        digest=digest if digest is not None else hasher.hexdigest(),
    )


def unpack(payload: ShmPayload):
    """Rebuild a packed object with process-local buffer copies.

    The out-of-band buffers are copied to local bytes before
    ``pickle.loads`` so the result owns its memory and stays valid after
    the arena is reset or unlinked — the property the digest cache
    (:func:`materialize`) relies on.  The copy is a raw memcpy: the
    arrays never traverse the serializer in either direction.
    """
    buffers = []
    for ref in payload.buffers:
        seg = _attach(ref.segment)
        buffers.append(bytes(seg.buf[ref.offset:ref.offset + ref.length]))
    ref = payload.stream_ref
    seg = _attach(ref.segment)
    stream = bytes(seg.buf[ref.offset:ref.offset + ref.length])
    return pickle.loads(stream, buffers=buffers)


def pack_seed(seed: np.random.SeedSequence) -> tuple:
    """Compact tuple encoding of a ``SeedSequence`` for the shm path.

    A pickled ``SeedSequence`` costs ~250 bytes of class metadata per
    bus — more than everything else a prepared work item ships.  Its
    generated stream is a pure function of (entropy, spawn_key,
    pool_size), so shipping that state as a plain tuple and rebuilding
    worker-side (:func:`unpack_seed`) is bit-exact by construction;
    ``n_children_spawned`` rides along so even downstream ``spawn()``
    trees match.
    """
    entropy = seed.entropy
    if isinstance(entropy, (list, np.ndarray)):
        entropy = tuple(int(word) for word in entropy)
    return (
        entropy,
        tuple(int(key) for key in seed.spawn_key),
        int(seed.pool_size),
        int(seed.n_children_spawned),
    )


def unpack_seed(state: tuple) -> np.random.SeedSequence:
    """Rebuild the exact ``SeedSequence`` a :func:`pack_seed` tuple encodes."""
    entropy, spawn_key, pool_size, n_children_spawned = state
    if isinstance(entropy, tuple):
        entropy = list(entropy)
    return np.random.SeedSequence(
        entropy=entropy,
        spawn_key=spawn_key,
        pool_size=pool_size,
        n_children_spawned=n_children_spawned,
    )


def content_digest(obj) -> Optional[str]:
    """A cheap content marker for parent-side payload reuse, if one exists.

    Objects that are already content-addressed expose it directly:
    fingerprints via ``digest()``, transmission lines via their resolved
    electrical profile's ``content_hash()`` (plus the name, which rides
    on records).  Returns None when no cheap marker exists — the caller
    then packs unconditionally and the exact packed-bytes digest takes
    over.
    """
    digest = getattr(obj, "digest", None)
    if callable(digest):
        # 128 bits of a content hash is ample for a cache key, and the
        # marker rides every shard task — keep it short.
        name = getattr(obj, "name", "")
        return f"{type(obj).__name__}:{name}:{digest()[:32]}"
    profile = getattr(obj, "full_profile", None)
    if profile is not None and hasattr(profile, "content_hash"):
        return (
            f"{type(obj).__name__}:{getattr(obj, 'name', '')}:"
            f"{profile.content_hash()}"
        )
    return None


# ----------------------------------------------------------------------
# worker-side materialization cache
# ----------------------------------------------------------------------
@dataclass
class TransportStats:
    """Worker-side transport counters, shipped home as per-shard deltas.

    Same discipline as the solve-cache and capture-kernel counters: the
    parent cannot read a worker's process state, so each shard returns
    the movement its visits produced and the dispatch loop folds it into
    ``Telemetry``.
    """

    COUNTER_KEYS = ("worker_materializations", "worker_cache_hits")

    worker_materializations: int = 0
    worker_cache_hits: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {key: getattr(self, key) for key in self.COUNTER_KEYS}

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        return {
            key: getattr(self, key) - before.get(key, 0)
            for key in self.COUNTER_KEYS
        }


@dataclass
class _MaterializedCache:
    """Digest-keyed LRU of unpacked payload objects (one per process)."""

    maxsize: int = 256
    entries: "OrderedDict[str, object]" = field(default_factory=OrderedDict)
    stats: TransportStats = field(default_factory=TransportStats)

    def get(self, payload: ShmPayload):
        obj = self.entries.get(payload.digest)
        if obj is not None:
            self.entries.move_to_end(payload.digest)
            self.stats.worker_cache_hits += 1
            return obj
        obj = unpack(payload)
        self.stats.worker_materializations += 1
        if len(self.entries) >= self.maxsize:
            self.entries.popitem(last=False)
        self.entries[payload.digest] = obj
        return obj


_MATERIALIZED = _MaterializedCache()


def materialize(payload: ShmPayload):
    """The worker-side entry point: cached unpack by content digest.

    A worker (or the parent, on the serial backend and the
    serial-fallback recovery rung) that has already materialized this
    exact content returns the cached object without touching the
    segment — which is why re-scanning an unchanged fleet ships only
    seeds and indices.
    """
    return _MATERIALIZED.get(payload)


def worker_transport_stats() -> TransportStats:
    """This process's materialization counters (for shard deltas)."""
    return _MATERIALIZED.stats
