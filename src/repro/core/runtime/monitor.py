"""The monitor runtime: drive endpoints on a cadence, fan events out.

:class:`MonitorRuntime` owns what every workload used to hand-roll
inline: resolving the attack timeline at the check instant, choosing
single- versus fused multi-lane monitoring, flattening the endpoint
decision into a canonical :class:`~repro.core.runtime.events.MonitorEvent`,
and fanning it out to pluggable sinks — the run's event log, the
workload's telemetry, anything exposing ``emit(event)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..divot import MonitorResult
from .cadence import Cadence
from .events import EventLog, MonitorEvent

__all__ = ["MonitorRuntime"]


class MonitorRuntime:
    """Drives DIVOT endpoints and emits canonical events into sinks.

    Args:
        cadence: The check scheduler whose cost accounting this runtime
            folds into telemetry at :meth:`finish` (optional — a runtime
            can also be driven ad hoc).
        telemetry: The workload's persistent :class:`Telemetry` sink.
        sinks: Additional sinks; anything with ``emit(event)``.
    """

    def __init__(
        self,
        cadence: Optional[Cadence] = None,
        telemetry=None,
        sinks: Sequence = (),
    ) -> None:
        self.cadence = cadence
        self.telemetry = telemetry
        #: This runtime's own event log (one per run, typically).
        self.log = EventLog()
        self._sinks = [self.log]
        if telemetry is not None:
            self._sinks.append(telemetry)
        for sink in sinks:
            self.add_sink(sink)
        self._folded = {}

    def add_sink(self, sink) -> None:
        """Attach another event consumer."""
        if not hasattr(sink, "emit"):
            raise TypeError("sink must expose emit(event)")
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    def check(
        self,
        endpoint,
        t: float,
        lines: Sequence,
        timeline=None,
        side: Optional[str] = None,
        bus: Optional[str] = None,
        protocol: Optional[str] = None,
        modifiers: Sequence = (),
        modifiers_by_lane: Optional[dict] = None,
        interference=None,
        engine: str = "born",
    ) -> MonitorResult:
        """One monitoring decision at simulated time ``t``.

        ``lines`` is the lane bundle the endpoint measures: a single
        line takes the single-lane path, several lanes fuse with
        min-similarity across the bundle.  ``timeline`` (anything with
        ``active_at(t)``) contributes whatever attacks are live at ``t``
        on top of the standing ``modifiers``.
        """
        if not lines:
            raise ValueError("at least one line is required")
        active = list(modifiers)
        if timeline is not None:
            active.extend(timeline.active_at(t))
        if len(lines) == 1:
            result = endpoint.monitor_capture(
                lines[0],
                modifiers=active,
                interference=interference,
                engine=engine,
            )
        else:
            result = endpoint.monitor_multi(
                list(lines),
                modifiers=active,
                modifiers_by_lane=modifiers_by_lane,
                interference=interference,
                engine=engine,
            )
        self.record(
            MonitorEvent.from_result(
                t, side if side is not None else endpoint.name, result,
                bus=bus, protocol=protocol,
            )
        )
        return result

    def record(self, event: MonitorEvent) -> MonitorEvent:
        """Fan out an already-measured event to every sink.

        The entry point for work performed off the runtime's own
        datapath — e.g. fleet shards measuring in worker processes —
        whose canonical events must still land in the run's log and the
        workload's telemetry.
        """
        for sink in self._sinks:
            sink.emit(event)
        return event

    # ------------------------------------------------------------------
    def finish(self) -> EventLog:
        """Fold new cadence accounting into telemetry; return the log.

        Safe to call repeatedly (e.g. once per scan on a long-lived
        runtime): only the counter growth since the last call is folded.
        """
        if self.telemetry is not None and self.cadence is not None:
            counters = self.cadence.counters()
            delta = {
                key: value - self._folded.get(key, 0)
                for key, value in counters.items()
            }
            self.telemetry.record_cadence(delta)
            self._folded = counters
        return self.log
