"""The unified monitoring runtime: cadence + event log + telemetry.

One architecture seam for every DIVOT workload.  An application builds a
cadence (when checks fire, what they cost), drives its endpoints through
a :class:`MonitorRuntime`, and reads results from the canonical
:class:`EventLog` and :class:`Telemetry` surfaces — so the memory bus,
the serial link, and the shared-datapath manager all report checks,
alerts, and detection latency identically, and a new workload plugs in
without re-implementing any decision plumbing.
"""

from .cadence import (
    Cadence,
    PeriodicCadence,
    RoundRobinCadence,
    TriggerBudgetCadence,
)
from .events import EventLog, MonitorEvent
from .monitor import MonitorRuntime
from .telemetry import SCORE_BINS, Telemetry

__all__ = [
    "Cadence",
    "PeriodicCadence",
    "TriggerBudgetCadence",
    "RoundRobinCadence",
    "EventLog",
    "MonitorEvent",
    "MonitorRuntime",
    "Telemetry",
    "SCORE_BINS",
]
