"""Cadence: when the next monitoring check fires, and what it costs.

Three scheduling disciplines cover the paper's workloads, and each owns
the timing/cost arithmetic its application used to duplicate inline:

* :class:`PeriodicCadence` — a clock lane toggles every cycle, so the
  trigger supply is unconditional and a check completes every fixed
  period (the memory bus).
* :class:`TriggerBudgetCadence` — a data lane has no free edge supply;
  each check costs a trigger budget the passing traffic must bank, with
  optional bounded idle-fill for quiet links (the serial link).
* :class:`RoundRobinCadence` — one shared measurement datapath visits
  registered buses in turn, so per-bus revisit time (and worst-case
  detection latency) grows linearly with the bus count (the shared
  manager).

Every cadence counts the checks it fired and the triggers those checks
consumed, so telemetry reports monitoring cost identically everywhere.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "Cadence",
    "PeriodicCadence",
    "TriggerBudgetCadence",
    "RoundRobinCadence",
]


class Cadence:
    """Base check scheduler: accounts checks and the triggers they cost."""

    def __init__(self, cost_triggers: int = 0) -> None:
        if cost_triggers < 0:
            raise ValueError("cost_triggers must be non-negative")
        #: Triggers one monitoring check consumes.
        self.cost_triggers = int(cost_triggers)
        #: Checks this cadence has fired so far.
        self.checks_run = 0
        #: Total triggers those checks consumed.
        self.triggers_consumed = 0

    def _account(self, consumed: Optional[int] = None) -> None:
        self.checks_run += 1
        self.triggers_consumed += (
            self.cost_triggers if consumed is None else int(consumed)
        )

    def counters(self) -> Dict[str, int]:
        """The cadence's accounting, in telemetry's key vocabulary."""
        return {
            "checks_run": self.checks_run,
            "triggers_consumed": self.triggers_consumed,
        }


class PeriodicCadence(Cadence):
    """Clock-lane cadence: one check completes every ``period_s``.

    The monitored conductor toggles every bus cycle, so measurement
    triggers are free-running and a decision lands every averaging-depth
    multiple of one capture's duration.
    """

    def __init__(self, period_s: float, cost_triggers: int = 0) -> None:
        super().__init__(cost_triggers)
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.period_s = period_s
        #: Completion time of the next scheduled check.
        self.next_due_s = period_s

    @classmethod
    def from_budget(
        cls,
        itdr,
        line,
        captures_per_check: int,
        trigger_rate: Optional[float] = None,
    ) -> "PeriodicCadence":
        """Size the period from one check's measurement budget on ``line``."""
        budget = itdr.budget(
            itdr.record_length(line), trigger_rate=trigger_rate
        )
        return cls(
            budget.duration_s * captures_per_check,
            cost_triggers=budget.n_triggers * captures_per_check,
        )

    def due(self, t: float) -> Iterator[float]:
        """Yield every check-completion time at or before ``t``."""
        while t >= self.next_due_s:
            fired = self.next_due_s
            self.next_due_s += self.period_s
            self._account()
            yield fired

    def force(self, t: float) -> float:
        """An out-of-band check at ``t`` (power-on probe, final sweep).

        Counted like any scheduled check; the periodic phase is
        unaffected.
        """
        self._account()
        return t


class TriggerBudgetCadence(Cadence):
    """Traffic-fed cadence: each check costs ``cost_triggers`` from a pool.

    The pool fills as traffic passes and a check fires the moment one
    full budget is banked.  Leftover triggers roll over across frames
    and calls — partial budgets are never discarded.
    """

    def __init__(self, cost_triggers: int) -> None:
        if cost_triggers < 1:
            raise ValueError("cost_triggers must be >= 1")
        super().__init__(cost_triggers)
        #: Triggers banked but not yet spent on a check.
        self.pool = 0

    @classmethod
    def from_budget(
        cls, itdr, line, captures_per_check: int
    ) -> "TriggerBudgetCadence":
        """Size the check cost from one measurement budget on ``line``."""
        budget = itdr.budget(itdr.record_length(line))
        return cls(budget.n_triggers * captures_per_check)

    def feed(self, n_triggers: int) -> None:
        """Bank the triggers one burst of traffic offered."""
        if n_triggers < 0:
            raise ValueError("n_triggers must be non-negative")
        self.pool += int(n_triggers)

    def due(self, t: float) -> Iterator[float]:
        """Yield ``t`` once per check the banked pool can pay for."""
        while self.pool >= self.cost_triggers:
            self.pool -= self.cost_triggers
            self._account()
            yield t

    def idle_fill(
        self,
        t: float,
        idle_triggers: int,
        idle_duration_s: float,
        max_idle_s: float,
    ) -> float:
        """Advance time feeding idle symbols until a check is affordable.

        Returns the time after idling, bounded by ``max_idle_s`` of added
        idle traffic; whether a check actually fires is decided by the
        next :meth:`due` call, so a tight bound can genuinely starve the
        monitor.
        """
        if idle_triggers < 1:
            raise ValueError("idle_triggers must be >= 1")
        if idle_duration_s <= 0:
            raise ValueError("idle_duration_s must be positive")
        idled = 0.0
        while self.pool < self.cost_triggers and idled < max_idle_s:
            t += idle_duration_s
            idled += idle_duration_s
            self.feed(idle_triggers)
        return t

    def force(self, t: float) -> float:
        """An out-of-band check at ``t``, funded by whatever is banked.

        Consumes the leftover pool up to one full budget so trigger
        accounting never reports a check as free.
        """
        consumed = min(self.pool, self.cost_triggers)
        self.pool -= consumed
        self._account(consumed)
        return t


class RoundRobinCadence(Cadence):
    """Shared-datapath cadence: registered buses visited in turn.

    One measurement datapath multiplexes every bus; each visit occupies
    it for ``visit_s``, so a bus is re-examined only once per full scan
    and worst-case detection latency grows linearly with the bus count —
    the un-quantified price of the paper's >90 % resource sharing.
    """

    def __init__(self, visit_s: float, cost_triggers: int = 0) -> None:
        super().__init__(cost_triggers)
        if visit_s <= 0:
            raise ValueError("visit_s must be positive")
        #: Datapath time one bus visit occupies.
        self.visit_s = visit_s
        #: The datapath's running clock across scans.
        self.time_s = 0.0

    @classmethod
    def from_budget(
        cls, itdr, line, captures_per_check: int
    ) -> "RoundRobinCadence":
        """Size the visit time from one measurement budget on ``line``."""
        budget = itdr.budget(itdr.record_length(line))
        return cls(
            budget.duration_s * captures_per_check,
            cost_triggers=budget.n_triggers * captures_per_check,
        )

    def scan_period_s(self, n_buses: int) -> float:
        """Full round-robin time over ``n_buses`` buses."""
        if n_buses < 1:
            raise ValueError("n_buses must be >= 1")
        return self.visit_s * n_buses

    def worst_case_latency_s(self, n_buses: int) -> float:
        """Detection-latency bound: an attack landing just after its
        bus's visit waits one full scan to be seen."""
        return self.scan_period_s(n_buses)

    def visits(self, names: Sequence[str]) -> Iterator[Tuple[str, float]]:
        """Yield ``(bus, completion time)`` for one scan, advancing the
        datapath clock."""
        for name in names:
            self.time_s += self.visit_s
            self._account()
            yield name, self.time_s
