"""Structured monitoring telemetry shared by every workload.

The telemetry sink turns the runtime's event stream into one dict shape:
per-endpoint counters, score histograms, cadence cost accounting, and
detection-latency summaries.  Experiments and benchmarks assert on the
same keys whether the events came from the memory bus, the serial link,
or the shared-datapath manager — the cross-workload comparison surface
the per-application list comprehensions could never give.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..capturekernel import CaptureKernelStats
from ..divot import Action
from ..solvecache import SolveCache, process_solve_cache
from ..transport import TRANSPORT_COUNTER_KEYS
from .events import EventLog, MonitorEvent

__all__ = ["Telemetry", "SCORE_BINS"]

#: Default histogram bin count over the similarity-score range [0, 1].
SCORE_BINS = 20


class Telemetry:
    """Event sink accumulating the shared monitoring metrics.

    Attach one per workload (it survives across runs/scans) and read
    :meth:`snapshot` — a plain dict with a stable schema:

    ``endpoints``
        per-side cell: ``checks``, ``proceeds``, ``blocks``, ``alerts``,
        ``flagged`` (non-PROCEED), ``tampered``, and a ``score``
        sub-dict (count/mean/min/max plus a fixed-bin histogram);
    ``buses``
        the same cell shape keyed by bus name, for multi-bus workloads;
    ``protocols``
        the same cell shape keyed by protected-link protocol name
        (``"membus"``, ``"jtag"``, ...), for registry-assembled
        workloads and mixed-protocol fleets; empty when events carry no
        protocol label;
    ``shards``
        the same cell shape keyed by shard id, for sharded fleet scans
        (empty for single-datapath workloads — shard labels are
        provenance, so these cells depend on the shard count while
        every other cell does not);
    ``totals``
        one cell over every event;
    ``cadence``
        ``checks_run`` and ``triggers_consumed`` folded in from the
        driving cadence(s);
    ``health``
        dispatch-fault accounting folded in from a sharded executor
        (``dispatches``, ``degraded_dispatches``, ``retries``,
        ``serial_fallbacks``, ``pool_rebuilds``, per-fault-kind
        counters, and ``per_shard_wall_s`` wall-time cells), plus the
        ``solve_cache`` section: ``process`` is this process's live
        solve-memo counters (hits/misses/evictions/occupancy), and
        ``workers`` accumulates the per-shard deltas fleet dispatches
        shipped home, and the ``capture_kernel`` section accumulates
        the per-shard fused/grid/dense-render counter deltas (see
        :class:`~repro.core.capturekernel.CaptureKernelStats`), and
        the ``transport`` section accumulates the shard-transport
        movement ledger (segments created/reused/unlinked, bytes moved
        through pickle streams vs. bytes referenced through
        shared-memory descriptors, payloads packed/reused, and
        worker-side materializations vs. digest-cache hits — see
        :mod:`repro.core.transport`); all-zero with an empty wall-time
        map for single-datapath workloads, so the snapshot shape stays
        identical across every workload;
    ``detection``
        ``onset_s``, ``first_alert_s``, overall ``latency_s`` and
        ``per_side`` latencies for the given attack onset;
    ``campaigns``
        adaptive-adversary campaign cells folded in via
        :meth:`record_campaign`, keyed ``"<protocol>/<strategy>"`` —
        ROC points, AUC, detection-latency frontiers, and baseline
        gaps; empty for workloads that ran no campaign, so the
        snapshot shape stays identical across every workload.
    """

    #: Health counters every snapshot carries (zeroed when unused).
    HEALTH_KEYS = (
        "dispatches",
        "degraded_dispatches",
        "retries",
        "serial_fallbacks",
        "pool_rebuilds",
        "timeouts",
        "broken_pools",
        "crashes",
        "errors",
    )

    def __init__(self, score_bins: int = SCORE_BINS) -> None:
        if score_bins < 1:
            raise ValueError("score_bins must be >= 1")
        self.score_bins = score_bins
        #: Every event this workload ever emitted, in time order.
        self.log = EventLog()
        self._cadence = {"checks_run": 0, "triggers_consumed": 0}
        self._health = {key: 0 for key in self.HEALTH_KEYS}
        self._shard_wall: Dict[int, Dict[str, float]] = {}
        self._solve_cache = {key: 0 for key in SolveCache.COUNTER_KEYS}
        self._capture_kernel = {
            key: 0 for key in CaptureKernelStats.COUNTER_KEYS
        }
        self._transport = {key: 0 for key in TRANSPORT_COUNTER_KEYS}
        self._campaigns: Dict[str, dict] = {}

    # -- sink protocol -------------------------------------------------
    def emit(self, event: MonitorEvent) -> None:
        """Record one monitoring event (runtime sink entry point)."""
        self.log.emit(event)

    def record_cadence(self, counters: Dict[str, int]) -> None:
        """Fold one run's cadence accounting into the workload totals."""
        for key in self._cadence:
            self._cadence[key] += int(counters.get(key, 0))

    def record_health(self, counters: Dict[str, int]) -> None:
        """Fold one dispatch's fault/recovery accounting into the totals."""
        for key in self._health:
            self._health[key] += int(counters.get(key, 0))

    def record_cache(self, counters: Dict[str, int]) -> None:
        """Fold one shard's solve-cache hit/miss/eviction delta in.

        Worker processes own their per-process solve caches; the parent
        cannot read them directly, so each shard ships the counter delta
        its visits produced and the dispatch loop folds it here.
        """
        for key in self._solve_cache:
            self._solve_cache[key] += int(counters.get(key, 0))

    def record_kernel(self, counters: Dict[str, int]) -> None:
        """Fold one shard's capture-kernel counter delta in.

        Same shipping discipline as :meth:`record_cache`: worker
        processes own their iTDRs, so each dispatch returns the
        fused/grid/dense-render counter movement its visits produced and
        the parent accumulates it here — the surface the fusion
        booby-trap test reads to prove fleet scans render no dense grids
        in the steady state.
        """
        for key in self._capture_kernel:
            self._capture_kernel[key] += int(counters.get(key, 0))

    def record_transport(self, counters: Dict[str, int]) -> None:
        """Fold one dispatch's shard-transport counter movement in.

        The parent-owned arenas count segment lifecycle and byte
        movement directly; worker materialization counters arrive as
        per-shard deltas like :meth:`record_cache`.  Both land here so
        the ``health.transport`` ledger in :meth:`snapshot` reflects the
        whole transport regardless of backend.
        """
        for key in self._transport:
            self._transport[key] += int(counters.get(key, 0))

    def record_campaign(self, key: str, cell: dict) -> None:
        """Fold one campaign arm's frontier summary into the snapshot.

        ``key`` identifies the cell (convention:
        ``"<protocol>/<strategy>"``); recording the same key twice
        replaces the cell — a campaign re-run supersedes its earlier
        summary rather than double-counting it.
        """
        if not key:
            raise ValueError("campaign key must be non-empty")
        self._campaigns[key] = dict(cell)

    def record_shard_wall(self, shard: int, wall_s: float) -> None:
        """Fold one shard's dispatch wall time into its running cell."""
        cell = self._shard_wall.setdefault(
            shard, {"dispatches": 0, "total_s": 0.0, "max_s": 0.0}
        )
        cell["dispatches"] += 1
        cell["total_s"] += float(wall_s)
        cell["max_s"] = max(cell["max_s"], float(wall_s))

    # -- the structured surface ----------------------------------------
    def _cell(self, events: List[MonitorEvent]) -> dict:
        scores = np.array([e.score for e in events], dtype=float)
        if scores.size:
            hist, edges = np.histogram(
                scores, bins=self.score_bins, range=(0.0, 1.0)
            )
            score = {
                "count": int(scores.size),
                "mean": float(scores.mean()),
                "min": float(scores.min()),
                "max": float(scores.max()),
                "hist": hist.tolist(),
                "bin_edges": edges.tolist(),
            }
        else:
            edges = np.linspace(0.0, 1.0, self.score_bins + 1)
            score = {
                "count": 0,
                "mean": None,
                "min": None,
                "max": None,
                "hist": [0] * self.score_bins,
                "bin_edges": edges.tolist(),
            }
        proceeds = sum(1 for e in events if e.action is Action.PROCEED)
        return {
            "checks": len(events),
            "proceeds": proceeds,
            "blocks": sum(1 for e in events if e.action is Action.BLOCK),
            "alerts": sum(1 for e in events if e.action is Action.ALERT),
            "flagged": len(events) - proceeds,
            "tampered": sum(1 for e in events if e.tampered),
            "score": score,
        }

    def snapshot(self, onset_s: Optional[float] = None) -> dict:
        """The structured metrics dict (optionally against an attack onset)."""
        sides = sorted({e.side for e in self.log})
        buses = sorted({e.bus for e in self.log if e.bus is not None})
        shards = sorted({e.shard for e in self.log if e.shard is not None})
        protocols = sorted(
            {e.protocol for e in self.log if e.protocol is not None}
        )
        detection = {
            "onset_s": onset_s,
            "first_alert_s": self.log.first_alert_time(),
            "latency_s": (
                None
                if onset_s is None
                else self.log.detection_latency(onset_s)
            ),
            "per_side": (
                {}
                if onset_s is None
                else {
                    side: self.log.detection_latency(onset_s, side=side)
                    for side in sides
                }
            ),
        }
        return {
            "endpoints": {
                side: self._cell(self.log.filter(side=side))
                for side in sides
            },
            "buses": {
                bus: self._cell(self.log.filter(bus=bus)) for bus in buses
            },
            "shards": {
                shard: self._cell(self.log.filter(shard=shard))
                for shard in shards
            },
            "protocols": {
                protocol: self._cell(self.log.filter(protocol=protocol))
                for protocol in protocols
            },
            "totals": self._cell(self.log.events),
            "cadence": dict(self._cadence),
            "health": {
                **self._health,
                "per_shard_wall_s": {
                    shard: dict(cell)
                    for shard, cell in sorted(self._shard_wall.items())
                },
                "solve_cache": {
                    "process": process_solve_cache().stats(),
                    "workers": dict(self._solve_cache),
                },
                "capture_kernel": dict(self._capture_kernel),
                "transport": dict(self._transport),
            },
            "detection": detection,
            "campaigns": {
                key: dict(cell)
                for key, cell in sorted(self._campaigns.items())
            },
        }
