"""Canonical monitoring event record and the shared event-log queries.

Every DIVOT workload — the clocked memory bus, the traffic-fed serial
link, the multiplexed shared-datapath manager — reports monitoring the
same way: a stream of :class:`MonitorEvent` records collected in an
:class:`EventLog`.  The log owns the query surface the per-application
result types used to hand-roll (alert filtering, first-alert time,
detection latency), so detection metrics mean exactly the same thing no
matter which channel produced the events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from ..divot import Action, MonitorResult

__all__ = ["MonitorEvent", "EventLog"]


@dataclass(frozen=True)
class MonitorEvent:
    """One monitoring outcome, identical across every workload.

    Attributes:
        time_s: Simulated time the monitoring decision completed.
        side: Which endpoint decided — ``"cpu"``/``"module"`` on the
            memory bus, ``"tx"``/``"rx"`` on the serial link, the bus
            name under the shared manager.
        action: The commanded reaction (PROCEED / BLOCK / ALERT).
        score: Authentication similarity score of the capture.
        tampered: Whether the tamper detector fired.
        location_m: Estimated tamper location along the line, if any.
        bus: The monitored bus's name for multi-bus deployments; None
            when the workload monitors a single channel.
        shard: Which fleet shard measured this event, for sharded scans;
            None for single-datapath workloads.  Provenance only — the
            measurement itself is shard-independent (per-bus seed
            streams), so equality of monitoring *outcomes* never depends
            on this field.
        recovery: How the measuring shard survived worker failure, when
            it needed to (``"retried"`` / ``"serial_fallback"``); None
            for a clean first attempt.  Provenance like ``shard``:
            recovery relocates a measurement, it never changes it.
        protocol: Registry name of the protected-link protocol that
            produced this event (``"membus"``, ``"jtag"``, ...); None for
            workloads assembled outside the protocol registry.  An opaque
            label — core carries it for filtering/telemetry, the registry
            itself lives above core.
    """

    time_s: float
    side: str
    action: Action
    score: float
    tampered: bool
    location_m: Optional[float]
    bus: Optional[str] = None
    shard: Optional[int] = None
    recovery: Optional[str] = None
    protocol: Optional[str] = None

    @property
    def is_alert(self) -> bool:
        """Whether this outcome demands a reaction (non-PROCEED)."""
        return self.action is not Action.PROCEED

    @classmethod
    def from_result(
        cls,
        time_s: float,
        side: str,
        result: MonitorResult,
        bus: Optional[str] = None,
        shard: Optional[int] = None,
        protocol: Optional[str] = None,
    ) -> "MonitorEvent":
        """Flatten one endpoint decision into the canonical record."""
        return cls(
            time_s=time_s,
            side=side,
            action=result.action,
            score=result.auth.score,
            tampered=result.tamper.tampered,
            location_m=result.tamper.location_m,
            bus=bus,
            shard=shard,
            protocol=protocol,
        )


class EventLog:
    """Time-ordered monitoring events plus the shared query surface.

    Doubles as a runtime sink (it exposes ``emit``), so a run's log and
    the workload's telemetry receive the very same event objects.
    """

    def __init__(self, events: Optional[Iterable[MonitorEvent]] = None) -> None:
        self.events: List[MonitorEvent] = list(events) if events else []

    # -- sink protocol -------------------------------------------------
    def emit(self, event: MonitorEvent) -> None:
        """Append one event (runtime sink entry point)."""
        self.events.append(event)

    def extend(self, events: Iterable[MonitorEvent]) -> None:
        """Append several events in order."""
        self.events.extend(events)

    # -- container behaviour -------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[MonitorEvent]:
        return iter(self.events)

    def __getitem__(self, index):
        return self.events[index]

    # -- the shared query surface --------------------------------------
    def filter(
        self,
        side: Optional[str] = None,
        bus: Optional[str] = None,
        shard: Optional[int] = None,
        protocol: Optional[str] = None,
    ) -> List[MonitorEvent]:
        """Events matching the given side/bus/shard/protocol, in time order."""
        return [
            e
            for e in self.events
            if (side is None or e.side == side)
            and (bus is None or e.bus == bus)
            and (shard is None or e.shard == shard)
            and (protocol is None or e.protocol == protocol)
        ]

    def alerts(
        self, side: Optional[str] = None, bus: Optional[str] = None
    ) -> List[MonitorEvent]:
        """Non-PROCEED events in time order."""
        return [e for e in self.filter(side=side, bus=bus) if e.is_alert]

    def recovered(self) -> List[MonitorEvent]:
        """Events whose measuring shard needed failure recovery."""
        return [e for e in self.events if e.recovery is not None]

    def first_alert_time(
        self, side: Optional[str] = None, bus: Optional[str] = None
    ) -> Optional[float]:
        """Time of the first BLOCK/ALERT, or None if the log is clean."""
        alerts = self.alerts(side=side, bus=bus)
        return alerts[0].time_s if alerts else None

    def detection_latency(
        self,
        onset_s: float,
        side: Optional[str] = None,
        bus: Optional[str] = None,
    ) -> Optional[float]:
        """Time from attack onset to the first alert at or after it.

        Alerts strictly before the onset (false positives, earlier
        attacks) are ignored; an alert exactly at the onset counts as
        zero latency; a clean log returns None.
        """
        for event in self.alerts(side=side, bus=bus):
            if event.time_s >= onset_s:
                return event.time_s - onset_s
        return None
