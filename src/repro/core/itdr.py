"""The integrated time-domain reflectometer (iTDR) — paper section II.

The iTDR chains every mechanism of the DIVOT architecture:

    probe edge (live bus traffic)  -> Tx-line back-reflection (physics)
    -> directional coupler pick-off -> comparator + PDM reference ladder
    -> ones counting over repeated triggers (APC)
    -> mixture-CDF inversion -> IIP waveform estimate on the ETS grid

A :class:`capture` is one complete IIP measurement: the digital artefact
that authentication and tamper detection consume.  The batch path runs
thousands of captures with per-capture perturbed line states in vectorised
numpy — the workhorse of the statistical experiments.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..signals.edges import EdgeShape
from ..signals.waveform import Waveform
from ..txline.line import TransmissionLine
from .apc import APCConverter
from .capturekernel import (
    CaptureKernelStats,
    FusedCountKernel,
    binomial_cdf_table,
)
from .comparator import Comparator
from .ets import ETSSampler, PhaseSteppingPLL
from .pdm import PDMScheme, TriangleWave, VernierRelation
from .solvecache import process_solve_cache
from .trigger import TriggerGenerator

__all__ = ["ITDRConfig", "IIPCapture", "MeasurementBudget", "ITDR"]


@dataclass(frozen=True)
class ITDRConfig:
    """Everything that defines one iTDR instance.

    Attributes:
        clock_frequency: Data/sampling clock, hertz (156.25 MHz prototype).
        phase_step: ETS phase increment tau, seconds (11.16 ps prototype).
        repetitions: Comparator trials per waveform point (APC averaging
            depth).  Together with the point count this sets both accuracy
            and measurement time.
        noise_sigma: Comparator input noise RMS, volts.
        comparator_offset: Comparator static offset, volts.
        coupling: Directional coupler pick-off fraction reaching the
            comparator input.
        use_pdm: Enable probability density modulation (False = bare APC,
            the ablation case).
        pdm_amplitude: Triangle-wave peak deviation, volts.  Sized to cover
            the expected reflection-signal span.
        pdm_vernier: The (p, q) Vernier relation between f_m and f_s.
        edge_rise_time: Probe edge 0-100 % rise time, seconds.
        edge_amplitude: Driver voltage swing, volts.
        trigger: Trigger generator (clock-lane default: every cycle fires).
        record_margin: Extra record time past the line round trip, seconds.
        reflection_cache_size: Capacity of the per-iTDR reflected-waveform
            LRU (the L1 in front of the process-wide solve memo).  Size it
            to the number of distinct line states an iTDR alternates
            between; the default covers the monitoring loop's handful.
        phase_jitter_rms: RMS timing jitter of the phase-stepping PLL,
            seconds.  Each trigger samples the waveform at a slightly wrong
            instant; over the repetition count this blurs the waveform
            (deterministic) and leaves a slope-proportional residual noise
            (statistical).  0 models the paper's "timing stability" setup.
        capture_kernel: ``"fused"`` (default) computes counts directly
            from cached per-level decision tables whenever the state is
            static and count-only — skipping every per-call dense-grid
            table rebuild; ``"grid"`` forces the historical dense path
            (the byte-identity reference the fused float64 kernel is
            pinned against).  Jitter, interference, and per-capture
            perturbed states always take the dense path regardless.
        dtype: ``"float64"`` (default, the bitwise reference) or
            ``"float32"`` — halves decision-table and estimate bandwidth
            on the fused and batched-render paths.  Switching to float32
            changes every capture's bits; tolerance-based goldens must be
            re-pinned (see docs/TESTING.md).
    """

    clock_frequency: float = 156.25e6
    phase_step: float = 11.16e-12
    repetitions: int = 24
    noise_sigma: float = 3.0e-3
    comparator_offset: float = 0.0
    coupling: float = 0.25
    use_pdm: bool = True
    pdm_amplitude: float = 18.0e-3
    pdm_vernier: tuple = (5, 6)
    edge_rise_time: float = 150e-12
    edge_amplitude: float = 1.2
    trigger: TriggerGenerator = field(
        default_factory=lambda: TriggerGenerator(clock_lane=True)
    )
    record_margin: float = 0.3e-9
    reflection_cache_size: int = 16
    phase_jitter_rms: float = 0.0
    capture_kernel: str = "fused"
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.reflection_cache_size < 1:
            raise ValueError("reflection_cache_size must be >= 1")
        if not 0 < self.coupling <= 1:
            raise ValueError("coupling must be in (0, 1]")
        if self.pdm_amplitude < 0:
            raise ValueError("pdm_amplitude must be non-negative")
        if self.phase_jitter_rms < 0:
            raise ValueError("phase_jitter_rms must be non-negative")
        if self.capture_kernel not in ("fused", "grid"):
            raise ValueError("capture_kernel must be 'fused' or 'grid'")
        if self.dtype not in ("float64", "float32"):
            raise ValueError("dtype must be 'float64' or 'float32'")

    @property
    def np_dtype(self) -> np.dtype:
        """The configured working precision as a numpy dtype."""
        return np.dtype(self.dtype)


@dataclass(frozen=True)
class IIPCapture:
    """One complete IIP measurement.

    Attributes:
        waveform: Estimated reflection waveform (volts at the comparator
            input) on the ETS time grid.
        line_name: Which physical line was measured.
        n_triggers: Probe edges consumed by this capture.
        duration_s: Wall-clock measurement time at the configured clock.
    """

    waveform: Waveform
    line_name: str
    n_triggers: int
    duration_s: float

    def normalized_samples(self) -> np.ndarray:
        """Zero-mean, unit-norm samples — the canonical fingerprint form."""
        x = self.waveform.samples - np.mean(self.waveform.samples)
        norm = np.linalg.norm(x)
        return x / norm if norm > 0 else x


@dataclass(frozen=True)
class MeasurementBudget:
    """Cost of one capture: triggers consumed and time spent."""

    n_points: int
    repetitions: int
    points_per_trigger: int
    n_triggers: int
    duration_s: float


class ITDR:
    """An integrated TDR instance attached to one bus interface.

    Args:
        config: Static configuration.
        rng: Random source for comparator noise (seed it for reproducible
            experiments).
    """

    def __init__(
        self,
        config: Optional[ITDRConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        # Constructed per instance: a module-level default instance would be
        # shared by every default-constructed iTDR (one TriggerGenerator for
        # the whole process).
        config = config if config is not None else ITDRConfig()
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng()
        self.pll = PhaseSteppingPLL(config.clock_frequency, config.phase_step)
        self.sampler = ETSSampler(self.pll)
        self.comparator = Comparator(
            noise_sigma=config.noise_sigma, offset=config.comparator_offset
        )
        self.edge = EdgeShape(
            rise_time=config.edge_rise_time,
            amplitude=config.edge_amplitude,
            kind="raised_cosine",
        )
        # Reflected-waveform memo: repeated captures of the same line state
        # (the averaging and monitoring paths) share one physics solve.
        # Keyed by a content hash of the resolved electrical state, so
        # mutating a line or its modifiers in place can never serve stale
        # physics; evicted least-recently-used, bounded to stay a cache.
        # This is the L1 in front of the process-wide SolveCache (L2),
        # which shares solved states across every iTDR in the process.
        self._reflection_cache: "OrderedDict" = OrderedDict()
        self._reflection_cache_max = config.reflection_cache_size
        self._solve_key_prefix: Optional[tuple] = None
        if config.use_pdm:
            p, q = config.pdm_vernier
            relation = VernierRelation(p, q)
            if not relation.is_effective:
                raise ValueError(
                    "pdm_vernier must be a non-degenerate (relatively prime, "
                    "q > 1) relation; f_m = f_s removes PDM's effect entirely"
                )
            wave = TriangleWave(
                amplitude=config.pdm_amplitude,
                frequency=config.clock_frequency * p / q,
            )
            self.pdm: Optional[PDMScheme] = PDMScheme(
                wave, relation, self.comparator
            )
            self.apc: Optional[APCConverter] = None
        else:
            self.pdm = None
            self.apc = APCConverter(self.comparator, v_ref=0.0)
        #: Which kernel did the work, and whether any dense-grid waveform
        #: was rendered — the fusion's regression surface (fleet dispatch
        #: ships worker deltas home into telemetry).
        self.kernel_stats = CaptureKernelStats()
        inverter = self.pdm if self.pdm is not None else self.apc
        levels = (
            self.pdm.reference_levels()
            if self.pdm is not None
            else np.array([0.0])
        )
        self._fused = FusedCountKernel(
            comparator=self.comparator,
            levels=levels,
            repetitions=config.repetitions,
            invert=inverter.invert,
            dtype=config.np_dtype,
            budget=self._BERNOULLI_BUDGET,
            cache_size=config.reflection_cache_size,
        )
        self._probe_edge: Optional[Waveform] = None

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def probe_edge(self) -> Waveform:
        """The probe edge on the ETS grid, with settling tail.

        The edge is a pure function of the frozen config, so it is
        rendered once and reused — the capture hot path asks for it on
        every call (record-length arithmetic, solve-key digest).
        """
        if self._probe_edge is None:
            self.kernel_stats.dense_renders += 1
            self._probe_edge = self.edge.rising(
                self.pll.phase_step, settle=self.config.edge_rise_time
            )
        return self._probe_edge

    def record_length(self, line: TransmissionLine) -> int:
        """Record length in ETS-grid points covering the full round trip."""
        profile = line.full_profile
        span = (
            profile.round_trip_delay
            + self.probe_edge().duration
            + self.config.record_margin
        )
        return int(np.ceil(span / self.pll.phase_step))

    def _solve_key(self, profile_hash: str, engine: str, n_out: int) -> tuple:
        """Fully content-addressed solve key, shareable across iTDRs.

        The per-iTDR inputs to a solve (probe-edge shape and coupling) are
        folded into a digest computed once, so two iTDRs with identical
        configurations produce identical keys and share entries in the
        process-wide cache — while iTDRs that differ in any solve input
        can never collide.
        """
        if self._solve_key_prefix is None:
            edge = self.probe_edge()
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.ascontiguousarray(edge.samples).tobytes())
            digest.update(
                np.array(
                    [edge.dt, edge.t0, self.config.coupling], dtype=float
                ).tobytes()
            )
            self._solve_key_prefix = ("reflection", digest.hexdigest())
        return (*self._solve_key_prefix, profile_hash, engine, n_out)

    def true_reflection(
        self,
        line: TransmissionLine,
        modifiers: Sequence = (),
        engine: str = "born",
    ) -> Waveform:
        """Noiseless reflected waveform at the comparator input.

        This is the physical ground truth the APC estimates; exposed for
        validation and for computing ideal similarity bounds.  Identical
        electrical states are memoised by content (the resolved profile's
        hash plus the probe-edge/coupling digest, engine and record
        length) in two levels: the per-iTDR LRU sized by
        ``ITDRConfig.reflection_cache_size``, then the process-wide
        :func:`~repro.core.solvecache.process_solve_cache` shared by every
        iTDR in the process (fleet workers, experiment loops).  Repeated
        captures of an unchanged state pay for one physics solve, while
        any in-place mutation of the line or its modifiers hashes
        differently and triggers a fresh solve.
        """
        return self._true_reflection_keyed(line, modifiers, engine)[0]

    def _true_reflection_keyed(
        self,
        line: TransmissionLine,
        modifiers: Sequence = (),
        engine: str = "born",
    ) -> tuple:
        """:meth:`true_reflection` plus the content-addressed solve key.

        The key doubles as the fused kernel's decision-table cache key, so
        the table cache inherits the reflection cache's integrity contract
        for free: any state mutation re-keys, a stale table can never be
        served.
        """
        profile = line.profile_under(modifiers)
        n_out = self.record_length(line)
        key = self._solve_key(profile.content_hash(), engine, n_out)
        solves = process_solve_cache()
        cached = self._reflection_cache.get(key)
        if cached is not None:
            self._reflection_cache.move_to_end(key)
            solves.record_hit()
            return cached, key
        wave = solves.get(key)
        if wave is None:
            self.kernel_stats.dense_renders += 1
            wave = line.reflected_waveform(
                self.probe_edge(), engine=engine, n_out=n_out, profile=profile
            )
            wave = wave.scaled(self.config.coupling)
            solves.put(key, wave)
        if len(self._reflection_cache) >= self._reflection_cache_max:
            self._reflection_cache.popitem(last=False)
        self._reflection_cache[key] = wave
        return wave, key

    # ------------------------------------------------------------------
    # measurement cost
    # ------------------------------------------------------------------
    def budget(self, n_points: int, trigger_rate: Optional[float] = None) -> MeasurementBudget:
        """Triggers and time needed to measure ``n_points`` ETS points.

        One trigger launches one probe edge; the comparator, clocked at the
        sampling rate, takes one decision per clock period that falls inside
        the record.  Records shorter than the clock period (the prototype
        case: 3.8 ns record, 6.4 ns period) yield one decision per trigger.
        """
        if trigger_rate is None:
            trigger_rate = self.config.trigger.expected_rate(
                self.config.clock_frequency
            )
        record_span = n_points * self.pll.phase_step
        points_per_trigger = max(
            1, int(record_span / self.pll.clock_period)
        )
        n_triggers = int(
            np.ceil(n_points / points_per_trigger) * self.config.repetitions
        )
        return MeasurementBudget(
            n_points=n_points,
            repetitions=self.config.repetitions,
            points_per_trigger=points_per_trigger,
            n_triggers=n_triggers,
            duration_s=n_triggers / trigger_rate,
        )

    # ------------------------------------------------------------------
    # capture paths
    # ------------------------------------------------------------------
    def _apply_jitter(self, v: np.ndarray) -> np.ndarray:
        """Model PLL timing jitter on a true-voltage array (any shape).

        Jitter blurs the waveform with a Gaussian kernel of the jitter
        width (the average over many mistimed triggers) and leaves a
        residual per-point error proportional to the local slope, reduced
        by the repetition averaging: ``slope * jitter / sqrt(R)``.
        """
        jitter = self.config.phase_jitter_rms
        if jitter <= 0:
            return v
        from scipy.ndimage import gaussian_filter1d

        sigma_samples = jitter / self.pll.phase_step
        smoothed = gaussian_filter1d(v, sigma_samples, axis=-1, mode="nearest")
        slope = np.gradient(smoothed, self.pll.phase_step, axis=-1)
        residual_rms = jitter / np.sqrt(self.config.repetitions)
        residual = slope * self.rng.normal(0.0, residual_rms, size=v.shape)
        return smoothed + residual

    def capture_stack(
        self,
        line: TransmissionLine,
        n_captures: int,
        modifiers: Sequence = (),
        interference=None,
        engine: str = "born",
    ) -> np.ndarray:
        """``n_captures`` independent estimates of one line state, ``(C, N)``.

        The shared batch engine every capture path routes through: one
        physics solve of the (possibly modified) line, then one vectorised
        numpy pass drawing jitter and comparator statistics independently
        per capture row.  Each row is distributed exactly like one
        :meth:`capture`, so averaging/monitoring consumers get loop-path
        statistics at batch-path cost.

        Static, interference-free states take the fused count kernel
        (``config.capture_kernel == "fused"``): counts come straight from
        cached per-level decision tables and a count→voltage lookup, with
        no per-call dense-grid work — byte-identical (at float64) to the
        ``"grid"`` reference path because both consume the generator
        stream in the same order against the same CDF bits.  Jitter and
        interference materialise per-row voltages and therefore always
        run the dense path.

        ``interference`` is an optional
        :class:`~repro.env.emi.EMIEnvironment` adding per-trial aggressor
        voltage at the comparator input.
        """
        if n_captures < 1:
            raise ValueError("n_captures must be >= 1")
        true_wave, key = self._true_reflection_keyed(
            line, modifiers, engine=engine
        )
        if (
            self.config.capture_kernel == "fused"
            and interference is None
            and self.config.phase_jitter_rms <= 0
        ):
            est = self._fused.estimate(
                key, true_wave.samples, n_captures, self.rng,
                self.kernel_stats,
            )
            self.kernel_stats.fused_calls += 1
            self.kernel_stats.fused_captures += n_captures
            return est
        v_batch = np.broadcast_to(
            true_wave.samples, (n_captures, len(true_wave))
        )
        return self._estimate_batch(v_batch, interference=interference)

    def capture(
        self,
        line: TransmissionLine,
        modifiers: Sequence = (),
        interference=None,
        engine: str = "born",
    ) -> IIPCapture:
        """One complete IIP measurement of ``line`` under ``modifiers``.

        A single-row :meth:`capture_stack` dressed with measurement
        metadata (trigger and wall-clock budgets).
        """
        est = self.capture_stack(
            line, 1, modifiers=modifiers, interference=interference,
            engine=engine,
        )[0]
        true_wave = self.true_reflection(line, modifiers, engine=engine)
        budget = self.budget(len(est))
        return IIPCapture(
            waveform=Waveform(est, self.pll.phase_step, true_wave.t0),
            line_name=line.name,
            n_triggers=budget.n_triggers,
            duration_s=budget.duration_s,
        )

    def capture_averaged(
        self,
        line: TransmissionLine,
        n_captures: int,
        modifiers: Sequence = (),
        interference=None,
        engine: str = "born",
    ) -> IIPCapture:
        """Average ``n_captures`` back-to-back captures into one record.

        Averaging suppresses APC estimation noise by ``sqrt(n_captures)``;
        the paper's published IIP waveforms are averages over its 8192
        measurements for the same reason.  The constituent captures come
        from one :meth:`capture_stack` call (one physics solve, one
        vectorised estimation pass); the trigger and time budgets sum over
        them as if they had run back to back.
        """
        stack = self.capture_stack(
            line,
            n_captures,
            modifiers=modifiers,
            interference=interference,
            engine=engine,
        )
        true_wave = self.true_reflection(line, modifiers, engine=engine)
        budget = self.budget(stack.shape[1])
        return IIPCapture(
            waveform=Waveform(
                stack.mean(axis=0), self.pll.phase_step, true_wave.t0
            ),
            line_name=line.name,
            n_triggers=n_captures * budget.n_triggers,
            duration_s=n_captures * budget.duration_s,
        )

    def capture_batch(
        self,
        line: TransmissionLine,
        n_captures: int,
        z_batch: Optional[np.ndarray] = None,
        tau_batch: Optional[np.ndarray] = None,
        interference=None,
        engine: str = "born",
    ) -> np.ndarray:
        """Vectorised captures, shape ``(n_captures, N)`` voltage estimates.

        With ``z_batch``/``tau_batch`` (shape ``(n_captures, S)``) each
        capture sees its own line state — the temperature/vibration path.
        Without them, all captures measure the same static state and only
        comparator statistics differ — the room-temperature path (identical
        to :meth:`capture_stack` with no modifiers).  ``engine`` selects
        the physics kernel for either path (``"born"`` or ``"lattice"`` —
        both expose the batch API).
        """
        if n_captures < 1:
            raise ValueError("n_captures must be >= 1")
        if z_batch is None:
            return self.capture_stack(
                line, n_captures, interference=interference, engine=engine
            )
        if tau_batch is None:
            raise ValueError("tau_batch is required with z_batch")
        if len(z_batch) != n_captures:
            raise ValueError("z_batch rows must equal n_captures")
        n_out = self.record_length(line)
        self.kernel_stats.dense_renders += n_captures
        v_batch = (
            line.batch_reflected_waveforms(
                self.probe_edge(), z_batch, tau_batch, n_out=n_out,
                engine=engine, dtype=self.config.np_dtype,
            )
            * self.config.coupling
        )
        return self._estimate_batch(v_batch, interference=interference)

    def _estimate_batch(
        self, v_batch: np.ndarray, interference=None
    ) -> np.ndarray:
        """Vectorised APC/PDM estimation over a (C, N) voltage matrix.

        This is the dense ("grid") path: per-call probability tables over
        the full voltage matrix.  It remains the byte-identity reference
        the fused kernel is pinned against, and the only path for jitter,
        interference, and per-capture perturbed states.
        """
        self.kernel_stats.grid_calls += 1
        self.kernel_stats.grid_captures += int(np.shape(v_batch)[0])
        v_batch = self._apply_jitter(
            np.asarray(v_batch, dtype=self.config.np_dtype)
        )
        r = self.config.repetitions
        if interference is not None:
            return self._estimate_batch_with_interference(v_batch, interference)
        if self.pdm is not None:
            levels = self.pdm.reference_levels()
            split = self.pdm.trial_split(r)
            counts = np.zeros(v_batch.shape, dtype=np.int64)
            for level, n_j in zip(levels, split):
                if n_j:
                    counts += self._count_ones_batch(v_batch, level, int(n_j))
            flat = self.pdm.invert((counts / r).ravel())
        else:
            counts = self._count_ones_batch(v_batch, 0.0, r)
            flat = self.apc.invert((counts / r).ravel())
        est = flat.reshape(v_batch.shape)
        return est.astype(self.config.np_dtype, copy=False)

    #: Element budget for the Bernoulli-trial sampling shortcut; above it
    #: the per-trial uniforms would not fit comfortably in cache/memory and
    #: direct binomial sampling wins.
    _BERNOULLI_BUDGET = 4_000_000

    def _count_ones_batch(
        self, v_batch: np.ndarray, level: float, n_trials: int
    ) -> np.ndarray:
        """Comparator counts over a (C, N) matrix, exploiting shared rows.

        A static-state stack is a broadcast matrix (stride 0 on the capture
        axis, unless jitter materialised it): every row shares the same
        Bernoulli probabilities, so P(Y=1) is computed once per point
        rather than once per (capture, point).  Counts are then drawn by
        inverse-CDF sampling — one uniform per element against the shared
        per-point binomial CDF (built by the numerically stable
        :func:`~repro.core.capturekernel.binomial_cdf_table`, safe at any
        repetition count), which is exactly Binomial(n, p) in
        distribution — falling back to direct binomial sampling when the
        comparison tensor would be too large.
        """
        dtype = self.config.np_dtype
        if v_batch.ndim == 2 and v_batch.strides[0] == 0:
            p = self.comparator.probability_of_one(
                v_batch[0], level, dtype=dtype
            )
            if n_trials * v_batch.size <= self._BERNOULLI_BUDGET:
                cdf = binomial_cdf_table(n_trials, p, dtype=dtype)
                u = self.rng.random(v_batch.shape, dtype=dtype)
                counts = np.zeros(v_batch.shape, dtype=np.int64)
                for k in range(n_trials):
                    counts += u > cdf[k]
                return counts
            return self.rng.binomial(
                n_trials, np.broadcast_to(p, v_batch.shape)
            )
        return self.comparator.count_ones(v_batch, level, n_trials, self.rng)

    def _estimate_batch_with_interference(
        self, v_batch: np.ndarray, interference
    ) -> np.ndarray:
        """Per-trial estimation under an aggressor, over a (C, N) matrix.

        Interference shifts the mean seen on each trial, so the fast
        binomial shortcut does not apply; the Bernoulli trials are drawn
        explicitly for all captures at once.  EMI trigger samples are
        i.i.d. per trigger instant, so drawing ``C * N`` points in one call
        is distributed exactly like ``C`` separate per-capture draws.
        """
        r = self.config.repetitions
        n_captures, n_points = v_batch.shape
        emi = interference.trial_voltages(
            n_captures * n_points, r, self.rng
        ).reshape(n_captures, n_points, r)
        if self.pdm is not None:
            # Per-trial reference ladder (the Vernier cycling), shared by
            # every (capture, point) pair.
            refs = self.pdm.reference_trial_voltages(1, r)[0]
            inverter = self.pdm
        else:
            refs = np.zeros(r)
            inverter = self.apc
        counts = self.comparator.count_ones_with_interference(
            v_batch, refs, r, self.rng, interference_trials=emi
        )
        flat = inverter.invert((counts / r).ravel())
        return flat.reshape(v_batch.shape)
