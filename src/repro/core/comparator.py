"""The 1-bit comparator: DIVOT's only analog component.

The iTDR replaces a bulky high-resolution ADC with a single comparator used
as a digital input pin.  Its thermal input noise is Gaussian, so for a given
signal/reference pair the output is a Bernoulli variable with

    P(Y = 1) = Phi((V_sig - V_ref) / sigma_noise)           (paper Eq. 1)

which is the entire physical basis of analog-to-probability conversion.
This module implements that probability law, exact Bernoulli/binomial
sampling, and the interference-perturbed variant used in the EMI study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.special import ndtr  # standard normal CDF, vectorised

__all__ = ["Comparator"]


@dataclass(frozen=True)
class Comparator:
    """A noisy voltage comparator.

    Attributes:
        noise_sigma: RMS Gaussian noise referred to the reference input,
            volts.  This is the *conversion gain medium* of APC, not a
            defect.
        offset: Static input offset voltage, volts.  Real comparators have
            one; the APC inversion absorbs it if calibration knows it.
    """

    noise_sigma: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.noise_sigma <= 0:
            raise ValueError(
                "noise_sigma must be positive: without noise there is no "
                "analog-to-probability conversion"
            )

    # ------------------------------------------------------------------
    def probability_of_one(self, v_sig, v_ref, dtype=float) -> np.ndarray:
        """P(Y=1) for signal/reference voltage(s) — the paper's Eq. (1).

        ``dtype`` selects the working precision: float64 (the default,
        and the byte-identity reference every pin is taken against) or
        float32 for the reduced-bandwidth capture mode — ``ndtr`` is a
        ufunc with a native single-precision loop, so the float32 path
        never materialises a double-precision intermediate.
        """
        v_sig = np.asarray(v_sig, dtype=dtype)
        v_ref = np.asarray(v_ref, dtype=dtype)
        z = (v_sig - self.offset - v_ref) / self.noise_sigma
        return ndtr(np.asarray(z, dtype=dtype))

    def decide(
        self,
        v_sig,
        v_ref,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One Bernoulli decision per input element (True means Y=1)."""
        p = self.probability_of_one(v_sig, v_ref)
        return rng.random(np.shape(p)) < p

    def count_ones(
        self,
        v_sig,
        v_ref,
        n_trials: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Number of Y=1 outcomes over ``n_trials`` repeated comparisons.

        Thermal noise is independent trial to trial, so the count is exactly
        binomial — sampled directly rather than trial by trial for speed.
        """
        if n_trials < 0:
            raise ValueError("n_trials must be non-negative")
        p = self.probability_of_one(v_sig, v_ref)
        return rng.binomial(n_trials, p)

    def count_ones_with_interference(
        self,
        v_sig: np.ndarray,
        v_ref,
        n_trials: int,
        rng: np.random.Generator,
        interference_trials: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Counts when an external aggressor adds voltage per trial.

        Args:
            v_sig: Signal voltage per measurement point, shape ``(..., N)``
                — leading axes batch independent captures.
            v_ref: Reference voltage, scalar or broadcastable against
                ``v_sig.shape + (n_trials,)``.
            n_trials: Comparisons per point.
            interference_trials: Aggressor voltage for every (point, trial),
                shape ``v_sig.shape + (n_trials,)``; None means no aggressor
                (falls back to the fast binomial path).

        Unlike thermal noise, interference shifts the *mean* seen on each
        trial, so the count is a sum of non-identical Bernoullis — sampled
        trial by trial.
        """
        v_sig = np.asarray(v_sig, dtype=float)
        if interference_trials is None:
            return self.count_ones(v_sig, v_ref, n_trials, rng)
        interference = np.asarray(interference_trials, dtype=float)
        if interference.shape != v_sig.shape + (n_trials,):
            raise ValueError(
                f"interference shape {interference.shape} must be "
                f"{v_sig.shape + (n_trials,)}"
            )
        v_trial = v_sig[..., None] + interference
        p = self.probability_of_one(v_trial, np.asarray(v_ref))
        ones = rng.random(p.shape) < p
        return ones.sum(axis=-1)
