"""Probability density modulation (PDM) — paper section II-C.

Bare APC is linear only within ~+/-2 sigma of its single reference, and the
chip's intrinsic noise sigma is neither predictable nor controllable.  PDM
fixes both: an external modulation wave (a quasi-triangle from an RC-shaped
digital output) rides on the reference input.  If the modulation frequency
``f_m`` and the sampling clock ``f_s`` are *relatively prime* (a Vernier
relationship), successive triggers of a fixed waveform point meet the
triangle at evenly spaced phases, so the point is compared against a uniform
ladder of reference levels.  The effective transfer curve becomes the
mixture of the shifted noise CDFs — wide, linear, and designed rather than
inherited from device physics.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Tuple

import numpy as np

from .apc import MixtureCdfInverter
from .comparator import Comparator

__all__ = ["TriangleWave", "VernierRelation", "PDMScheme"]


@dataclass(frozen=True)
class TriangleWave:
    """A symmetric triangle modulation wave.

    Attributes:
        amplitude: Peak deviation from the centre, volts (wave spans
            ``centre +/- amplitude``).
        frequency: Repetition rate, hertz.
        centre: DC centre of the wave, volts.
    """

    amplitude: float
    frequency: float
    centre: float = 0.0

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")

    def value_at(self, t) -> np.ndarray:
        """Instantaneous wave value at time(s) ``t``."""
        phase = np.mod(np.asarray(t, dtype=float) * self.frequency, 1.0)
        tri = 1.0 - 4.0 * np.abs(phase - 0.5)  # +1 at phase 0.5, -1 at 0/1
        return self.centre + self.amplitude * tri


@dataclass(frozen=True)
class VernierRelation:
    """The f_m : f_s frequency relationship between modulation and sampling.

    Expressed as the reduced ratio ``f_m / f_s = p / q``.  When ``p`` and
    ``q`` are coprime and ``q > 1``, a fixed waveform point sampled on
    successive clock periods sweeps through ``q`` evenly spaced phases of the
    modulation wave before repeating — the Vernier time delay of Fig. 3
    (whose example is 5 f_m = 6 f_s, i.e. p=5, q=6).
    """

    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p < 1 or self.q < 1:
            raise ValueError("p and q must be positive integers")

    @staticmethod
    def from_frequencies(f_m: float, f_s: float, max_den: int = 4096) -> "VernierRelation":
        """Derive the reduced ratio from physical frequencies."""
        if f_m <= 0 or f_s <= 0:
            raise ValueError("frequencies must be positive")
        frac = Fraction(f_m / f_s).limit_denominator(max_den)
        return VernierRelation(frac.numerator, frac.denominator)

    @property
    def is_effective(self) -> bool:
        """Whether the relation actually spreads reference levels.

        ``f_m = f_s`` (p == q == 1 after reduction) compares the signal with
        the same voltage on every trigger, "completely removing the
        effectiveness of an external modulation signal" (paper II-C).
        """
        return self.distinct_phases > 1

    @property
    def distinct_phases(self) -> int:
        """Number of distinct modulation phases a fixed point experiences."""
        return self.q // gcd(self.p, self.q)

    def phases(self) -> np.ndarray:
        """The modulation phases visited, as fractions of the wave period.

        Over ``q`` successive sampling periods, trigger ``k`` meets the wave
        at phase ``(k * p / q) mod 1``; with coprime p, q these are the
        ``q``-th roots of unity in phase — evenly spaced.
        """
        k = np.arange(self.distinct_phases)
        step = self.p / self.q
        return np.mod(k * step, 1.0)


class PDMScheme:
    """A complete PDM configuration: wave + Vernier relation + inverter.

    Attributes:
        wave: The external modulation wave.
        relation: The f_m:f_s Vernier relation.
        comparator: The comparator whose noise the scheme is designed around.
    """

    def __init__(
        self,
        wave: TriangleWave,
        relation: VernierRelation,
        comparator: Comparator,
    ) -> None:
        self.wave = wave
        self.relation = relation
        self.comparator = comparator
        self._inverter = MixtureCdfInverter(
            self.reference_levels() + comparator.offset,
            comparator.noise_sigma,
        )

    # ------------------------------------------------------------------
    def reference_levels(self) -> np.ndarray:
        """The distinct reference voltages a fixed waveform point sees."""
        phases = self.relation.phases()
        # Evaluate the triangle at each visited phase (time = phase/f).
        return np.sort(
            np.asarray(self.wave.value_at(phases / self.wave.frequency))
        )

    @property
    def n_levels(self) -> int:
        """Number of distinct reference levels (q for coprime p, q)."""
        return len(self.reference_levels())

    def trial_split(self, repetitions: int) -> np.ndarray:
        """Trials assigned to each sorted reference level, ``(q,)``.

        ``repetitions`` trials distribute over the levels as the Vernier
        cycling distributes them: as evenly as integer division allows,
        with the remainder spread over the first levels (exactly what
        happens when the trial count is not a multiple of q).  Every
        counting path — looped, batched, and the fused count kernel —
        shares this split, which is what keeps their statistics (and for
        the fused/grid pair, their bits) interchangeable.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        q = self.n_levels
        base, extra = divmod(repetitions, q)
        return base + (np.arange(q) < extra).astype(np.int64)

    # ------------------------------------------------------------------
    def measure_counts(
        self,
        v_true: np.ndarray,
        repetitions: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Total Y=1 counts per point with references cycling per trial.

        References cycle through the sorted ladder with the
        :meth:`trial_split` allocation of trials per level.
        """
        v_true = np.asarray(v_true, dtype=float)
        levels = self.reference_levels()
        split = self.trial_split(repetitions)
        counts = np.zeros(v_true.shape, dtype=np.int64)
        for level, n_j in zip(levels, split):
            if n_j:
                counts += self.comparator.count_ones(
                    v_true, level, int(n_j), rng
                )
        return counts

    def estimate_voltage(
        self,
        v_true: np.ndarray,
        repetitions: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Full PDM-APC measurement of a voltage array."""
        counts = self.measure_counts(v_true, repetitions, rng)
        return self._inverter.invert(counts / repetitions)

    def invert(self, p_hat) -> np.ndarray:
        """Mixture-CDF inversion for externally obtained probabilities."""
        return self._inverter.invert(p_hat)

    def count_lookup(self, repetitions: int) -> np.ndarray:
        """Count→voltage table — see :meth:`MixtureCdfInverter.count_lookup`."""
        return self._inverter.count_lookup(repetitions)

    # ------------------------------------------------------------------
    def linear_window(self, threshold: float = 0.1) -> Tuple[float, float]:
        """Usable voltage window — widened versus bare APC (Fig. 4)."""
        return self._inverter.linear_window(threshold)

    @property
    def dynamic_range(self) -> float:
        """Width of the linear window in volts."""
        lo, hi = self.linear_window()
        return hi - lo

    def reference_trial_voltages(
        self, n_points: int, n_trials: int
    ) -> np.ndarray:
        """Reference voltage for every (point, trial), shape ``(N, R)``.

        Used by the interference-aware measurement path, which needs the
        per-trial reference explicitly rather than binomial shortcuts.
        """
        levels = self.reference_levels()
        q = len(levels)
        idx = np.arange(n_trials) % q
        row = levels[idx]
        return np.broadcast_to(row, (n_points, n_trials)).copy()
