"""Adaptive references: surviving temperature and age without new risk.

Two deployment-hardening policies for the drift problems the evaluation
exposes (Fig. 8's hot-swing EER rise, and long-term aging):

* :class:`MultiConditionAuthenticator` — enroll the line under several
  conditions (e.g. cold and hot) and score fresh captures against the
  best-matching reference.  An honest line matches *some* enrolled
  condition; an impostor matches none, so the max-score fusion buys
  robustness without giving attackers a wider target than the per-
  reference threshold already allows.

* :class:`AdaptiveReference` — a rolling exponential update of the stored
  fingerprint from *accepted* captures only.  Scores far above threshold
  fold into the reference, tracking slow drift; borderline and rejected
  captures never update it, so an attacker cannot walk the reference
  toward a foreign line without first passing authentication outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .auth import capture_similarity, similarity
from .fingerprint import Fingerprint
from .itdr import IIPCapture

__all__ = ["MultiConditionAuthenticator", "AdaptiveReference"]


@dataclass(frozen=True)
class _ConditionMatch:
    """Best-condition scoring outcome."""

    accepted: bool
    score: float
    matched_condition: str
    threshold: float


class MultiConditionAuthenticator:
    """Max-score fusion over references enrolled at several conditions."""

    def __init__(self, threshold: float = 0.85) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.threshold = threshold
        self._references: List[Fingerprint] = []
        self._labels: List[str] = []

    @property
    def n_conditions(self) -> int:
        """Enrolled condition count."""
        return len(self._references)

    def enroll(self, fingerprint: Fingerprint, label: str) -> None:
        """Add one condition's reference."""
        if self._references and len(fingerprint.samples) != len(
            self._references[0].samples
        ):
            raise ValueError("all references must share a record length")
        self._references.append(fingerprint)
        self._labels.append(label)

    def decide(self, capture: IIPCapture) -> _ConditionMatch:
        """Score against every condition; accept on the best."""
        if not self._references:
            raise RuntimeError("enroll at least one condition first")
        scores = [
            capture_similarity(capture, reference)
            for reference in self._references
        ]
        best = int(np.argmax(scores))
        return _ConditionMatch(
            accepted=scores[best] >= self.threshold,
            score=float(scores[best]),
            matched_condition=self._labels[best],
            threshold=self.threshold,
        )


class AdaptiveReference:
    """A stored fingerprint that tracks slow drift from accepted captures.

    Attributes:
        alpha: Exponential update weight per accepted capture.
        update_margin: Only captures scoring at least this far *above* the
            acceptance threshold update the reference — the guard that
            stops borderline (possibly adversarial) captures from steering
            it.
    """

    def __init__(
        self,
        fingerprint: Fingerprint,
        threshold: float = 0.85,
        alpha: float = 0.05,
        update_margin: float = 0.02,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if update_margin < 0:
            raise ValueError("update_margin must be non-negative")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self._samples = fingerprint.samples.copy()
        self.name = fingerprint.name
        self.dt = fingerprint.dt
        self.threshold = threshold
        self.alpha = alpha
        self.update_margin = update_margin
        self.n_updates = 0

    # ------------------------------------------------------------------
    def current(self) -> Fingerprint:
        """The reference as it stands now.

        A frozen snapshot: the :class:`Fingerprint` constructor copies and
        freezes its samples, so the returned object neither aliases this
        reference's live update buffer nor can be mutated by the caller.
        """
        return Fingerprint(name=self.name, samples=self._samples, dt=self.dt)

    def score(self, capture: IIPCapture) -> float:
        """Similarity of a capture against the current reference."""
        return similarity(capture.waveform.samples, self._samples)

    def consider(self, capture: IIPCapture) -> bool:
        """Authenticate; fold strongly accepted captures into the reference.

        Returns the acceptance decision.  The reference only moves when
        the score clears ``threshold + update_margin``.
        """
        s = self.score(capture)
        accepted = s >= self.threshold
        if s >= self.threshold + self.update_margin:
            x = capture.waveform.samples - np.mean(capture.waveform.samples)
            norm = np.linalg.norm(x)
            if norm > 0:
                x = x / norm
                blended = (1.0 - self.alpha) * self._samples + self.alpha * x
                blended_norm = np.linalg.norm(blended)
                if blended_norm > 0:
                    self._samples = blended / blended_norm
                    self.n_updates += 1
        return accepted
