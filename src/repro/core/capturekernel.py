"""The fused count-only capture kernel.

The iTDR's consumers — authentication, tamper checks, fleet scans — only
ever use the comparator *counts* (and the voltage estimates inverted from
them).  Yet the historical capture path re-derived everything per call:
P(Y=1) tables via ``ndtr``, a binomial inverse-CDF table per reference
level, and a dense ``np.interp`` inversion over the whole ``(C, N)``
estimate matrix.  For a static line state all of that is a pure function
of the cached reflection response and the iTDR configuration.

This module caches it.  :class:`FusedCountKernel` keys per-level decision
probabilities, binomial CDF tables, and a ``(repetitions + 1)``-entry
count→voltage lookup on the same content-addressed solve key the
reflection cache uses, then draws all reference levels' counts in one
vectorised pass.  The float64 kernel consumes the generator stream in
exactly the order the grid path does (one uniform block per active
reference level, compared against the same CDF bits), so its output is
*byte-identical* to the grid path — pinned in
``tests/property/test_fused_capture.py`` — while skipping every per-call
table rebuild.

It also owns :func:`binomial_cdf_table`, the numerically stable
replacement for the historical ``math.comb``-product CDF construction,
which overflowed for ``n_trials ≳ 1030`` (``comb(n, k)`` exceeds the
float range) and whose ``p**k`` underflow biased the tail for moderate
``n_trials``.  Small tables keep the historical formula bit-for-bit (the
regression pins depend on those bits); large tables switch to
``scipy.stats.binom`` which computes the CDF through the regularised
incomplete beta function.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np
from scipy.stats import binom as _binom

from .comparator import Comparator

__all__ = [
    "EXACT_PMF_MAX_TRIALS",
    "CaptureKernelStats",
    "FusedCountKernel",
    "binomial_cdf_table",
]

#: Largest trial count for which the historical term-product CDF
#: construction is used.  Up to here ``math.comb(n, k)`` stays well inside
#: the float range and ``p**k`` underflow is negligible, and — critically —
#: the produced bits match the pre-fix implementation exactly, which the
#: seeded regression pins (campaign statistics, protocol byte-pins) rely
#: on.  Above it the stable beta-function path takes over; overflow set in
#: around ``n_trials ≈ 1030`` (``comb(1030, 515)`` > float64 max).
EXACT_PMF_MAX_TRIALS = 64


def binomial_cdf_table(
    n_trials: int, p: np.ndarray, dtype=np.float64
) -> np.ndarray:
    """``P(X <= k)`` for ``k = 0 .. n_trials-1``, shape ``(n_trials, N)``.

    The table feeds inverse-CDF sampling: a uniform ``u`` maps to the
    count ``#{k : u > cdf[k]}``, which is exactly ``Binomial(n_trials, p)``
    in distribution.  ``p`` is the per-point Bernoulli probability array.

    For ``n_trials <= EXACT_PMF_MAX_TRIALS`` (and float64) the historical
    term-product construction is kept verbatim so existing seeded pins
    stay bit-identical; beyond that the regularised-incomplete-beta CDF
    takes over — stable at any trial count (the old formula raised
    ``OverflowError`` from ``repetitions ≳ 1030``).
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    p = np.atleast_1d(np.asarray(p))
    if np.dtype(dtype) == np.float64 and n_trials <= EXACT_PMF_MAX_TRIALS:
        p64 = np.asarray(p, dtype=np.float64)
        q64 = 1.0 - p64
        pmf = [
            math.comb(n_trials, k) * p64**k * q64 ** (n_trials - k)
            for k in range(n_trials)
        ]
        return np.cumsum(pmf, axis=0)
    k = np.arange(n_trials, dtype=np.float64)
    cdf = _binom.cdf(k[:, None], n_trials, np.asarray(p, dtype=np.float64))
    return cdf.astype(dtype, copy=False)


@dataclass
class CaptureKernelStats:
    """Mutable counters describing which capture kernel did the work.

    ``dense_renders`` counts every materialisation of a dense analog-grid
    waveform (probe-edge render, reflection solve, per-state batch
    render).  In the fused steady state — warm caches, count-only
    consumers — it must stay at zero; the booby-trap test in
    ``tests/core/test_capture_kernel.py`` pins that so the fusion cannot
    silently regress.
    """

    fused_calls: int = 0
    fused_captures: int = 0
    grid_calls: int = 0
    grid_captures: int = 0
    dense_renders: int = 0
    table_builds: int = 0
    table_hits: int = 0

    COUNTER_KEYS = (
        "fused_calls",
        "fused_captures",
        "grid_calls",
        "grid_captures",
        "dense_renders",
        "table_builds",
        "table_hits",
    )

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view of the counters (telemetry/bench surface)."""
        return {key: getattr(self, key) for key in self.COUNTER_KEYS}

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter movement since a previous :meth:`snapshot`."""
        return {
            key: getattr(self, key) - int(before.get(key, 0))
            for key in self.COUNTER_KEYS
        }

    def reset(self) -> None:
        for key in self.COUNTER_KEYS:
            setattr(self, key, 0)


@dataclass(frozen=True)
class _LevelTables:
    """Everything the fused kernel needs for one cached line state."""

    #: Per active reference level: P(Y=1) per record point, ``(N,)``.
    probs: Tuple[np.ndarray, ...]
    #: Per active reference level: binomial CDF table, ``(n_j, N)``.
    cdfs: Tuple[np.ndarray, ...]
    #: Stacked CDF tensor ``(L, max_nj, N)`` padded with a sentinel above
    #: every uniform draw, so padded rows contribute zero counts.
    cdf_pad: np.ndarray
    #: Trials assigned to each active level (Vernier split of repetitions).
    n_js: Tuple[int, ...]
    n_points: int


#: Comparison sentinel for padded CDF rows.  ``Generator.random`` draws in
#: ``[0, 1)``, so ``u > 2.0`` is False everywhere a level has no trial.
_PAD = 2.0


class FusedCountKernel:
    """Count-only capture estimation from cached decision tables.

    One instance hangs off each :class:`~repro.core.itdr.ITDR`.  Per line
    state (identified by the iTDR's content-addressed solve key) it caches
    the per-level decision probabilities and binomial CDF tables computed
    from the cached reflection response, plus one count→voltage lookup
    shared across states.  :meth:`estimate` then produces a ``(C, N)``
    estimate matrix without touching the dense-grid pipeline.

    Stream discipline (the float64 byte-identity contract): the grid path
    draws, per active reference level in ascending-level order, one
    ``(C, N)`` uniform block (or one ``rng.binomial`` call when that
    level's comparison tensor exceeds ``budget``).  The fused kernel
    consumes the stream identically — a single ``(L, C, N)`` draw is
    bit-for-bit the ``L`` successive blocks — so identical seeds give
    identical captures down to the last bit.
    """

    def __init__(
        self,
        comparator: Comparator,
        levels: Sequence[float],
        repetitions: int,
        invert: Callable[[np.ndarray], np.ndarray],
        dtype=np.float64,
        budget: int = 4_000_000,
        cache_size: int = 16,
    ) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.comparator = comparator
        self.dtype = np.dtype(dtype)
        self.repetitions = repetitions
        self._budget = budget
        self._cache_size = cache_size
        # The Vernier trial split: repetitions distributed over the sorted
        # reference ladder as evenly as integer division allows, remainder
        # on the first levels — matching PDMScheme.measure_counts and the
        # grid estimation loop exactly.  Levels left with zero trials are
        # dropped (they draw nothing on either path).
        levels = np.sort(np.asarray(levels, dtype=float))
        base, extra = divmod(repetitions, len(levels))
        self._active: List[Tuple[float, int]] = [
            (float(level), base + (1 if j < extra else 0))
            for j, level in enumerate(levels)
            if base + (1 if j < extra else 0) > 0
        ]
        # Count -> voltage estimate, the (r+1)-entry closed form of the
        # mixture-CDF inversion: lookup[c] is bitwise what invert(c / r)
        # returns, because both clip and interpolate elementwise on the
        # identical quotient.
        lookup = invert(np.arange(repetitions + 1) / repetitions)
        self._lookup = np.asarray(lookup).astype(self.dtype, copy=False)
        self._tables: "OrderedDict[object, _LevelTables]" = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def count_lookup(self) -> np.ndarray:
        """The cached count→voltage table (exposed for tests/benchmarks)."""
        return self._lookup

    def _build_tables(self, v_samples: np.ndarray) -> _LevelTables:
        f32 = self.dtype == np.float32
        probs = []
        cdfs = []
        for level, n_j in self._active:
            p = self.comparator.probability_of_one(
                v_samples, level, dtype=self.dtype if f32 else float
            )
            probs.append(p)
            cdfs.append(binomial_cdf_table(n_j, p, dtype=self.dtype))
        n_points = len(v_samples)
        max_nj = max(n_j for _, n_j in self._active)
        cdf_pad = np.full(
            (len(self._active), max_nj, n_points), _PAD, dtype=self.dtype
        )
        for j, cdf in enumerate(cdfs):
            cdf_pad[j, : cdf.shape[0]] = cdf
        return _LevelTables(
            probs=tuple(probs),
            cdfs=tuple(cdfs),
            cdf_pad=cdf_pad,
            n_js=tuple(n_j for _, n_j in self._active),
            n_points=n_points,
        )

    def tables_for(
        self, key: object, v_samples: np.ndarray, stats: CaptureKernelStats
    ) -> _LevelTables:
        """Cached per-state tables, building (and evicting LRU) on miss."""
        tables = self._tables.get(key)
        if tables is not None:
            self._tables.move_to_end(key)
            stats.table_hits += 1
            return tables
        tables = self._build_tables(np.asarray(v_samples, dtype=float))
        stats.table_builds += 1
        if len(self._tables) >= self._cache_size:
            self._tables.popitem(last=False)
        self._tables[key] = tables
        return tables

    def _uniform(self, shape, rng: np.random.Generator) -> np.ndarray:
        if self.dtype == np.float32:
            return rng.random(shape, dtype=np.float32)
        return rng.random(shape)

    def estimate(
        self,
        key: object,
        v_samples: np.ndarray,
        n_captures: int,
        rng: np.random.Generator,
        stats: CaptureKernelStats,
    ) -> np.ndarray:
        """``(n_captures, N)`` voltage estimates of one static line state.

        ``key`` addresses the table cache (the iTDR's solve key);
        ``v_samples`` is the cached noiseless reflection at the comparator
        input, used only on a table miss.
        """
        if n_captures < 1:
            raise ValueError("n_captures must be >= 1")
        tables = self.tables_for(key, v_samples, stats)
        c, n = n_captures, tables.n_points
        size = c * n
        if all(n_j * size <= self._budget for n_j in tables.n_js):
            # One stream-equivalent draw for every level, one comparison
            # against the padded CDF tensor, one integer reduction.
            u = self._uniform((len(tables.n_js), c, n), rng)
            counts = (
                u[:, None, :, :] > tables.cdf_pad[:, :, None, :]
            ).sum(axis=(0, 1))
        else:
            # Mixed regime: levels whose comparison tensor busts the
            # budget fall back to direct binomial sampling, in the same
            # per-level order the grid path uses.
            counts = np.zeros((c, n), dtype=np.int64)
            for p, cdf, n_j in zip(tables.probs, tables.cdfs, tables.n_js):
                if n_j * size <= self._budget:
                    u = self._uniform((c, n), rng)
                    counts += (u[None, :, :] > cdf[:, None, :]).sum(axis=0)
                else:
                    counts += rng.binomial(n_j, np.broadcast_to(p, (c, n)))
        return self._lookup[counts]
