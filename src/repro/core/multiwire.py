"""Multi-wire authentication: fusing fingerprints across a bus's lanes.

The paper's section IV-C: "Theoretical analysis suggests that monitoring
multiple wires on a bus can exponentially increase authentication
accuracy."  A parallel bus offers many conductors, each carrying an
independent IIP; an attacker must defeat all of them simultaneously, while
an honest bus only has to be itself on each.  This module promotes the
idea from an ablation into a library API with selectable fusion policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..txline.line import TransmissionLine
from .auth import capture_similarity
from .fingerprint import Fingerprint
from .itdr import ITDR

__all__ = ["FUSION_POLICIES", "MultiWireDecision", "MultiWireAuthenticator"]


def _fuse_mean(scores: np.ndarray) -> float:
    return float(np.mean(scores))


def _fuse_min(scores: np.ndarray) -> float:
    return float(np.min(scores))


def _fuse_median(scores: np.ndarray) -> float:
    return float(np.median(scores))


#: Available fusion policies.
#: ``mean`` averages per-wire evidence (best for independent noise);
#: ``min`` demands every wire match (strongest against partial cloning —
#: one bad wire sinks the bus); ``median`` tolerates a damaged wire.
FUSION_POLICIES: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": _fuse_mean,
    "min": _fuse_min,
    "median": _fuse_median,
}


@dataclass(frozen=True)
class MultiWireDecision:
    """Outcome of one fused authentication."""

    accepted: bool
    fused_score: float
    per_wire_scores: np.ndarray
    threshold: float
    policy: str

    @property
    def weakest_wire(self) -> int:
        """Index of the wire with the lowest individual score."""
        return int(np.argmin(self.per_wire_scores))


class MultiWireAuthenticator:
    """Enrolls and verifies a bundle of wires as one identity.

    Args:
        itdr: The (shared, multiplexed) measurement engine — the paper's
            resource-sharing argument means one datapath serves all wires.
        threshold: Acceptance threshold on the fused score.
        policy: One of :data:`FUSION_POLICIES`.
    """

    def __init__(
        self,
        itdr: ITDR,
        threshold: float = 0.85,
        policy: str = "mean",
    ) -> None:
        if policy not in FUSION_POLICIES:
            raise ValueError(
                f"policy must be one of {sorted(FUSION_POLICIES)}, got {policy!r}"
            )
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.itdr = itdr
        self.threshold = threshold
        self.policy = policy
        self._references: List[Fingerprint] = []

    # ------------------------------------------------------------------
    @property
    def n_wires(self) -> int:
        """Wires enrolled (0 before enrollment)."""
        return len(self._references)

    def enroll(
        self,
        wires: Sequence[TransmissionLine],
        n_captures: int = 8,
        engine: str = "born",
    ) -> List[Fingerprint]:
        """Fingerprint every wire of the bus (one batch call per wire)."""
        if len(wires) == 0:
            raise ValueError("at least one wire is required")
        if n_captures < 1:
            raise ValueError("n_captures must be >= 1")
        self._references = [
            Fingerprint.from_stack(
                self.itdr.capture_stack(wire, n_captures, engine=engine),
                dt=self.itdr.pll.phase_step,
                name=wire.name,
            )
            for wire in wires
        ]
        return list(self._references)

    def score(
        self,
        wires: Sequence[TransmissionLine],
        interference=None,
        engine: str = "born",
    ) -> np.ndarray:
        """Per-wire similarity of fresh captures against enrollment."""
        if not self._references:
            raise RuntimeError("enroll before scoring")
        if len(wires) != len(self._references):
            raise ValueError(
                f"expected {len(self._references)} wires, got {len(wires)}"
            )
        return np.array(
            [
                capture_similarity(
                    self.itdr.capture(
                        wire, interference=interference, engine=engine
                    ),
                    reference,
                )
                for wire, reference in zip(wires, self._references)
            ]
        )

    def decide(
        self,
        wires: Sequence[TransmissionLine],
        interference=None,
        engine: str = "born",
    ) -> MultiWireDecision:
        """Fused accept/reject over the whole bundle."""
        scores = self.score(wires, interference=interference, engine=engine)
        fused = FUSION_POLICIES[self.policy](scores)
        return MultiWireDecision(
            accepted=fused >= self.threshold,
            fused_score=fused,
            per_wire_scores=scores,
            threshold=self.threshold,
            policy=self.policy,
        )
