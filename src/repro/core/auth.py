"""Authentication mathematics: similarity, ROC, and EER (section IV-B/C).

The paper's similarity (Eq. 4) is the inner product of two IIP waveforms,
normalised into [0, 1].  We realise the normalisation as

    S(x, y) = (1 + cos_angle(x - mean, y - mean)) / 2

i.e. the cosine similarity of zero-mean records mapped onto [0, 1]: two
captures of the same line score near 1, statistically unrelated fingerprints
score near 1/2, and anti-correlated records score near 0.  The mapping is
monotone in the raw inner product, so ROC/EER analysis is unaffected by the
choice of affine normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .fingerprint import Fingerprint, dt_compatible
from .itdr import IIPCapture

__all__ = [
    "similarity",
    "capture_similarity",
    "error_function",
    "RocCurve",
    "roc_curve",
    "equal_error_rate",
    "Authenticator",
    "AuthDecision",
]


def _canonical(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    x = x - np.mean(x)
    norm = np.linalg.norm(x)
    return x / norm if norm > 0 else x


def similarity(x: np.ndarray, y: np.ndarray) -> float:
    """Normalised IIP similarity in [0, 1] — the paper's Eq. (4).

    Accepts raw sample arrays; both are zero-meaned and unit-normed before
    the inner product.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    cos = float(np.dot(_canonical(x), _canonical(y)))
    return float(np.clip((1.0 + cos) / 2.0, 0.0, 1.0))


def capture_similarity(capture: IIPCapture, fingerprint: Fingerprint) -> float:
    """Similarity between a fresh capture and an enrolled fingerprint.

    Both the record length and the time grid must agree: two length-equal
    records sampled at different ``dt`` are different physical measurements,
    and scoring them would silently compare across ETS configurations.
    """
    if len(capture.waveform) != len(fingerprint.samples):
        raise ValueError(
            "capture and fingerprint lengths differ "
            f"({len(capture.waveform)} vs {len(fingerprint.samples)}); "
            "they must come from the same record configuration"
        )
    if not dt_compatible(capture.waveform.dt, fingerprint.dt):
        raise ValueError(
            "capture and fingerprint time grids differ "
            f"(dt {capture.waveform.dt} vs {fingerprint.dt}); "
            "they must come from the same record configuration"
        )
    return similarity(capture.waveform.samples, fingerprint.samples)


def error_function(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pointwise squared IIP error E_xy(n) = (x(n) - y(n))^2 — Eq. (5).

    Inputs are canonicalised (zero-mean, unit-norm) first so the error is a
    pure shape contrast, independent of capture gain.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    return (_canonical(x) - _canonical(y)) ** 2


@dataclass(frozen=True)
class RocCurve:
    """A receiver operating characteristic over similarity thresholds.

    Attributes:
        thresholds: Candidate acceptance thresholds, ascending.
        false_positive_rate: Fraction of impostor scores >= threshold.
        false_negative_rate: Fraction of genuine scores < threshold.
    """

    thresholds: np.ndarray
    false_positive_rate: np.ndarray
    false_negative_rate: np.ndarray

    @property
    def true_positive_rate(self) -> np.ndarray:
        """1 - FNR, the conventional ROC y-axis."""
        return 1.0 - self.false_negative_rate

    def eer(self) -> Tuple[float, float]:
        """(equal error rate, threshold) where FPR crosses FNR.

        Linear interpolation between the bracketing thresholds; when the
        distributions are perfectly separated the EER is 0 at any threshold
        inside the gap (the midpoint is returned).
        """
        diff = self.false_positive_rate - self.false_negative_rate
        # diff starts >= 0 (low threshold accepts everyone -> FPR 1, FNR 0)
        # and ends <= 0; find the sign change.
        idx = np.flatnonzero(diff <= 0)
        if len(idx) == 0:
            return float(self.false_positive_rate[-1]), float(self.thresholds[-1])
        i = int(idx[0])
        if i == 0:
            return float(self.false_negative_rate[0]), float(self.thresholds[0])
        d0, d1 = diff[i - 1], diff[i]
        if d0 == d1:
            w = 0.5
        else:
            w = d0 / (d0 - d1)
        thr = self.thresholds[i - 1] + w * (
            self.thresholds[i] - self.thresholds[i - 1]
        )
        fpr = self.false_positive_rate[i - 1] + w * (
            self.false_positive_rate[i] - self.false_positive_rate[i - 1]
        )
        fnr = self.false_negative_rate[i - 1] + w * (
            self.false_negative_rate[i] - self.false_negative_rate[i - 1]
        )
        return float(0.5 * (fpr + fnr)), float(thr)


def roc_curve(
    genuine: np.ndarray, impostor: np.ndarray, n_thresholds: int = 2001
) -> RocCurve:
    """Build the ROC from genuine/impostor similarity score samples."""
    genuine = np.asarray(genuine, dtype=float)
    impostor = np.asarray(impostor, dtype=float)
    if len(genuine) == 0 or len(impostor) == 0:
        raise ValueError("both score sets must be non-empty")
    lo = min(genuine.min(), impostor.min())
    hi = max(genuine.max(), impostor.max())
    pad = 1e-6 + 0.01 * (hi - lo)
    thresholds = np.linspace(lo - pad, hi + pad, n_thresholds)
    # Vectorised counting via sorted searches.
    g_sorted = np.sort(genuine)
    i_sorted = np.sort(impostor)
    fnr = np.searchsorted(g_sorted, thresholds, side="left") / len(g_sorted)
    fpr = 1.0 - np.searchsorted(i_sorted, thresholds, side="left") / len(i_sorted)
    return RocCurve(thresholds, fpr, fnr)


def equal_error_rate(
    genuine: np.ndarray, impostor: np.ndarray
) -> Tuple[float, float]:
    """(EER, threshold) directly from score samples."""
    return roc_curve(genuine, impostor).eer()


@dataclass(frozen=True)
class AuthDecision:
    """Outcome of one authentication attempt."""

    accepted: bool
    score: float
    threshold: float
    line_name: str


class Authenticator:
    """Thresholded fingerprint matcher used by a DIVOT endpoint.

    Attributes:
        threshold: Acceptance threshold on the similarity score.  Choose it
            at the EER point of a calibration run, or per the paper's
            within-+/-0.1 % rule.
    """

    def __init__(self, threshold: float = 0.9) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.threshold = threshold

    def decide(
        self, capture: IIPCapture, fingerprint: Fingerprint
    ) -> AuthDecision:
        """Accept or reject a capture against an enrolled fingerprint."""
        score = capture_similarity(capture, fingerprint)
        return AuthDecision(
            accepted=score >= self.threshold,
            score=score,
            threshold=self.threshold,
            line_name=capture.line_name,
        )
