"""Analog-to-probability conversion (APC) — paper section II-B.

APC measures an analog voltage by *counting*: compare the signal against a
reference many times, estimate ``p = P(Y=1)``, and invert the noise CDF:

    V_sig = V_ref + CDF^{-1}(p)                              (paper Eq. 2)

The sensitivity ``d p / d V_sig`` is the noise PDF (Eq. 3), so conversion is
linear and sensitive only within about +/-2 sigma of the reference — the
dynamic-range limitation that PDM later removes.  This module provides the
single-reference converter and the generic mixture-CDF inverter that PDM
reuses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import ndtr

from .comparator import Comparator

__all__ = ["APCConverter", "MixtureCdfInverter", "apc_sensitivity"]


def apc_sensitivity(v_sig, v_ref, noise_sigma: float) -> np.ndarray:
    """dP/dV at the given operating point — the Gaussian PDF (Eq. 3)."""
    v = (np.asarray(v_sig, dtype=float) - v_ref) / noise_sigma
    return np.exp(-0.5 * v**2) / (noise_sigma * np.sqrt(2.0 * np.pi))


class MixtureCdfInverter:
    """Numerical inverse of a Gaussian-mixture CDF.

    With reference levels ``levels`` visited with equal probability (the
    Vernier property guarantees uniformity), the observed probability is

        p(V) = mean_j Phi((V - level_j) / sigma)

    which is strictly increasing in ``V`` and therefore invertible.  A dense
    lookup table plus linear interpolation gives a fast vectorised inverse;
    accuracy is limited by table pitch (default sigma/50), far below the
    statistical noise of any finite-trial estimate.
    """

    def __init__(
        self,
        levels: Sequence[float],
        noise_sigma: float,
        table_span_sigmas: float = 6.0,
        table_points_per_sigma: int = 50,
    ) -> None:
        if noise_sigma <= 0:
            raise ValueError("noise_sigma must be positive")
        levels = np.sort(np.asarray(levels, dtype=float))
        if len(levels) == 0:
            raise ValueError("at least one reference level is required")
        self.levels = levels
        self.noise_sigma = noise_sigma
        lo = levels[0] - table_span_sigmas * noise_sigma
        hi = levels[-1] + table_span_sigmas * noise_sigma
        n = max(
            16,
            int(np.ceil((hi - lo) / noise_sigma * table_points_per_sigma)),
        )
        self._v_grid = np.linspace(lo, hi, n)
        self._p_grid = self.forward(self._v_grid)

    def forward(self, v) -> np.ndarray:
        """Mixture CDF: probability of Y=1 at signal voltage ``v``."""
        v = np.asarray(v, dtype=float)
        z = (v[..., None] - self.levels) / self.noise_sigma
        return ndtr(z).mean(axis=-1)

    def invert(self, p) -> np.ndarray:
        """Voltage estimate for observed probability/ies ``p``.

        Probabilities are clipped to the table's range so the estimator
        saturates (like real hardware) instead of diverging at p in {0, 1}.
        """
        p = np.asarray(p, dtype=float)
        p = np.clip(p, self._p_grid[0], self._p_grid[-1])
        return np.interp(p, self._p_grid, self._v_grid)

    def count_lookup(self, repetitions: int) -> np.ndarray:
        """Voltage estimate for every possible count, ``(repetitions + 1,)``.

        A count-only capture path observes integer counts ``c`` in
        ``0 .. repetitions``, so the continuous inversion collapses to a
        finite table: ``lookup[c]`` is bitwise what ``invert(c / R)``
        returns (both paths clip and interpolate the identical quotient
        elementwise).  The fused capture kernel indexes this instead of
        re-interpolating a dense ``(C, N)`` probability matrix per call.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        return self.invert(np.arange(repetitions + 1) / repetitions)

    def linear_window(self, threshold: float = 0.1) -> tuple:
        """Voltage span where sensitivity exceeds ``threshold`` x its peak.

        For a single reference this recovers the paper's ~+/-2 sigma linear
        region; for a PDM mixture the window widens to cover the level span.
        """
        pdf = np.gradient(self._p_grid, self._v_grid)
        peak = pdf.max()
        good = np.flatnonzero(pdf >= threshold * peak)
        return float(self._v_grid[good[0]]), float(self._v_grid[good[-1]])


@dataclass
class APCConverter:
    """The bare APC: one comparator, one fixed reference voltage.

    Attributes:
        comparator: The noisy comparator performing decisions.
        v_ref: The fixed reference voltage.
    """

    comparator: Comparator
    v_ref: float = 0.0

    def __post_init__(self) -> None:
        self._inverter = MixtureCdfInverter(
            [self.v_ref + self.comparator.offset], self.comparator.noise_sigma
        )

    # ------------------------------------------------------------------
    def measure_probability(
        self,
        v_true: np.ndarray,
        repetitions: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Estimated p-hat at each signal point over ``repetitions`` trials."""
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        counts = self.comparator.count_ones(v_true, self.v_ref, repetitions, rng)
        return counts / repetitions

    def estimate_voltage(
        self,
        v_true: np.ndarray,
        repetitions: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Full APC measurement: count, estimate p-hat, invert the CDF."""
        p_hat = self.measure_probability(v_true, repetitions, rng)
        return self._inverter.invert(p_hat)

    def invert(self, p_hat) -> np.ndarray:
        """CDF inversion only (Eq. 2), for externally obtained counts."""
        return self._inverter.invert(p_hat)

    def count_lookup(self, repetitions: int) -> np.ndarray:
        """Count→voltage table — see :meth:`MixtureCdfInverter.count_lookup`."""
        return self._inverter.count_lookup(repetitions)

    def linear_window(self, threshold: float = 0.1) -> tuple:
        """The usable voltage window around ``v_ref`` (about +/-2 sigma)."""
        return self._inverter.linear_window(threshold)

    @property
    def dynamic_range(self) -> float:
        """Width of the linear window in volts."""
        lo, hi = self.linear_window()
        return hi - lo

    def expected_estimate_std(
        self, v_true: float, repetitions: int
    ) -> float:
        """Predicted standard deviation of the voltage estimate.

        Delta method: std(V-hat) = sqrt(p(1-p)/R) / pdf(V).  Useful for
        sizing the repetition count against a target voltage resolution.
        """
        p = float(self.comparator.probability_of_one(v_true, self.v_ref))
        sens = float(
            apc_sensitivity(
                v_true,
                self.v_ref + self.comparator.offset,
                self.comparator.noise_sigma,
            )
        )
        if sens == 0.0:
            return np.inf
        return float(np.sqrt(p * (1.0 - p) / repetitions) / sens)
