"""Runtime measurement support: the FIFO trigger generator (section II-E).

Live bus data is random and channel coding balances the symbols, so rising
and falling edges occur equally often with symmetric shapes — their
reflections cancel if the iTDR averages over both.  The fix is a trigger
generated from the transmit data buffer: measure only when a chosen bit
pattern (e.g. a 1 followed by a 0, a falling edge) is about to launch.  The
clock lane needs no trigger at all: every cycle is the same edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["TriggerGenerator", "trigger_rate"]


@dataclass(frozen=True)
class TriggerGenerator:
    """Scans the transmit FIFO for probe-worthy bit patterns.

    Attributes:
        pattern: The bit pair that fires a trigger; ``(1, 0)`` means "a 1
            preceding a 0 is ready to launch" — the paper's example, which
            probes with falling edges.  ``(0, 1)`` probes with rising edges.
        clock_lane: When True, every clock period triggers (the clock lane's
            waveform is fully predictable, no gating needed).
    """

    pattern: tuple = (1, 0)
    clock_lane: bool = False

    def __post_init__(self) -> None:
        if len(self.pattern) != 2 or any(b not in (0, 1) for b in self.pattern):
            raise ValueError("pattern must be a pair of bits")

    def trigger_indices(self, bits: Sequence[int]) -> np.ndarray:
        """Bit positions at which a measurement trigger fires.

        The returned index is the position of the *second* bit of the
        pattern — the symbol boundary where the probe edge launches.
        """
        bits = np.asarray(bits)
        if self.clock_lane:
            return np.arange(len(bits))
        if len(bits) < 2:
            return np.zeros(0, dtype=int)
        first, second = self.pattern
        hits = (bits[:-1] == first) & (bits[1:] == second)
        return np.flatnonzero(hits) + 1

    def count_triggers(self, bits: Sequence[int]) -> int:
        """Number of triggers the bit stream yields."""
        return len(self.trigger_indices(bits))

    def expected_rate(self, bit_rate: float) -> float:
        """Expected triggers per second on balanced random data.

        A specific ordered bit pair occurs with probability 1/4 per symbol
        boundary; the clock lane triggers every period.
        """
        if bit_rate <= 0:
            raise ValueError("bit_rate must be positive")
        if self.clock_lane:
            return bit_rate
        return bit_rate / 4.0


def trigger_rate(bit_rate: float, clock_lane: bool = False) -> float:
    """Convenience: expected trigger rate for a lane type."""
    return TriggerGenerator(clock_lane=clock_lane).expected_rate(bit_rate)
