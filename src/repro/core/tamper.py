"""Runtime tamper detection and localisation (sections IV-D/E/F).

Authentication asks "is this the same line?"; tamper detection asks "what
changed, and where?".  The error function E_xy(n) = (x(n) - y(n))^2 answers
both: a large value at index n places an impedance disturbance at round-trip
time n*tau, i.e. distance velocity*n*tau/2 from the measuring end.  The
detection threshold is calibrated on the quietest attack signature (the
magnetic probe), which then catches every louder one — the paper sets it at
5e-7 in its units for exactly this reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..signals.filters import moving_average
from ..signals.waveform import Waveform
from .auth import error_function
from .fingerprint import Fingerprint
from .itdr import IIPCapture

__all__ = ["TamperVerdict", "TamperDetector", "calibrate_threshold"]


@dataclass(frozen=True)
class TamperVerdict:
    """Outcome of one tamper check.

    Attributes:
        tampered: Whether the error exceeded the detector threshold.
        peak_error: Largest value of the (smoothed) error function.
        threshold: Threshold in force during the check.
        location_index: Sample index of the error peak (None if clean).
        location_time_s: Round-trip time of the peak.
        location_m: Estimated one-way distance of the disturbance from the
            measuring end, when a velocity was configured.
    """

    tampered: bool
    peak_error: float
    threshold: float
    location_index: Optional[int] = None
    location_time_s: Optional[float] = None
    location_m: Optional[float] = None


class TamperDetector:
    """Compares live captures against a reference and localises changes.

    Attributes:
        threshold: Alarm level on the smoothed error function.
        velocity: Propagation velocity for distance conversion, m/s (None
            disables localisation in metres).
        smooth_window: Samples of boxcar smoothing applied to E_xy before
            thresholding; suppresses isolated single-point estimation noise
            without blurring attack signatures (which span many ETS points).
    """

    def __init__(
        self,
        threshold: float,
        velocity: Optional[float] = None,
        smooth_window: int = 5,
        alignment_offset_s: float = 0.0,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if smooth_window < 1:
            raise ValueError("smooth_window must be >= 1")
        if alignment_offset_s < 0:
            raise ValueError("alignment_offset_s must be non-negative")
        self.threshold = threshold
        self.velocity = velocity
        self.smooth_window = smooth_window
        self.alignment_offset_s = alignment_offset_s

    def error_profile(
        self, capture: IIPCapture, reference: Fingerprint
    ) -> Waveform:
        """The smoothed error function E_xy over the record."""
        if len(capture.waveform) != len(reference.samples):
            raise ValueError("capture and reference lengths differ")
        e = error_function(capture.waveform.samples, reference.samples)
        wave = Waveform(e, capture.waveform.dt, capture.waveform.t0)
        return moving_average(wave, self.smooth_window)

    def check(self, capture: IIPCapture, reference: Fingerprint) -> TamperVerdict:
        """Run one tamper check and localise any disturbance."""
        profile = self.error_profile(capture, reference)
        peak_idx = int(np.argmax(profile.samples))
        peak = float(profile.samples[peak_idx])
        if peak < self.threshold:
            return TamperVerdict(
                tampered=False, peak_error=peak, threshold=self.threshold
            )
        # The error peak lags the echo arrival by the probe-edge duration
        # (the reflected edge finishes changing one edge-length after the
        # echo starts); alignment_offset_s removes that systematic lag.
        t_round = max(
            0.0, profile.t0 + peak_idx * profile.dt - self.alignment_offset_s
        )
        location_m = (
            self.velocity * t_round / 2.0 if self.velocity is not None else None
        )
        return TamperVerdict(
            tampered=True,
            peak_error=peak,
            threshold=self.threshold,
            location_index=peak_idx,
            location_time_s=t_round,
            location_m=location_m,
        )


def calibrate_threshold(
    clean_peak_errors: np.ndarray,
    attack_peak_errors: np.ndarray,
    safety_factor: float = 2.0,
) -> float:
    """Choose a threshold between ambient noise and the quietest attack.

    The paper picks 5e-7 because the magnetic probe — the smallest
    signature — still clears it while ambient E_xy stays below.  Given peak
    errors from clean captures and from the quietest attack, return the
    geometric compromise: ``safety_factor`` times the clean maximum, capped
    at the attack minimum's midpoint when the gap is narrow.
    """
    clean_peak_errors = np.asarray(clean_peak_errors, dtype=float)
    attack_peak_errors = np.asarray(attack_peak_errors, dtype=float)
    if len(clean_peak_errors) == 0 or len(attack_peak_errors) == 0:
        raise ValueError("both observations sets must be non-empty")
    clean_max = float(clean_peak_errors.max())
    attack_min = float(attack_peak_errors.min())
    if attack_min <= clean_max:
        # No clean separation: split the overlap at the geometric mean.
        return float(np.sqrt(clean_max * max(attack_min, 1e-30)))
    proposed = safety_factor * clean_max
    return float(min(proposed, 0.5 * (clean_max + attack_min)))
