"""1:N fleet identification: "which enrolled bus is this?" at scale.

The paper's deployment story is a *fleet* of protected buses, but the
authentication layer (:mod:`repro.core.auth`) is strictly 1:1 — enroll one
line, score one capture against it.  This module adds the population view
the PUF-framework literature calls identification: a content-addressed
:class:`FingerprintStore` holding up to 10⁵–10⁶ enrolled IIPs, with an
indexed :meth:`FingerprintStore.identify` lookup that beats brute-force
scoring without changing the answer.

Index design
------------

Brute force scores a query against every enrolled template — an ``(M, N)``
matrix-vector product over full records (``N`` in the hundreds).  The store
instead keeps a coarse **sketch** per template: stacked low-dimensional
projections of the canonical waveform —

* the first few complex rFFT bins (the spectral shape of the reflection
  profile, where line-to-line contrast concentrates), and
* a fixed random orthonormal projection (a Johnson-Lindenstrauss sketch
  carrying full-band contrast the truncated spectrum misses),

unit-normalised and stacked into one ``(M, D)`` matrix with ``D ≪ N``.  A
query costs one ``(M, D)`` mat-vec plus a top-K ``argpartition`` to produce
a shortlist, then **exact** similarity rescoring (the same canonical inner
product :func:`repro.core.auth.capture_similarity` computes) on the
shortlist rows only.  Whenever the true best match survives the shortlist
cut — the common case by a wide margin, pinned in the property suite — the
rank-1 answer is *identical* to brute force, because the final ordering is
decided by exact scores.

Drift-aware templates
---------------------

Aging (:mod:`repro.env.aging`) drifts fingerprints cumulatively and
temperature (:mod:`repro.env.temperature`) swings them reversibly, so the
store keeps **versioned** templates per bus and folds strongly-identified
captures into a new version (exponential blend, the fleet-scale sibling of
:class:`repro.core.adaptive.AdaptiveReference`).  The update guard is the
security argument, so it is stated precisely:

    A capture may update bus *b*'s template only if (i) it scores at least
    ``threshold + update_margin`` against *b*'s current template, (ii) *b*
    is the exact rank-1 identification, and (iii) the rank-1 score beats
    the runner-up by at least ``min_separation``.

Consequences: an impostor cannot ride a drift window, because to move
*b*'s template at all it must first outscore every enrolled bus — its own
true identity included — *and* clear the acceptance threshold with margin
against *b*'s current (genuine) template; a borderline capture (genuine or
not) never moves anything.  Each accepted update moves the unit-norm
template by at most ``2·alpha`` in L2, so the acceptance region tracks
slow genuine drift and cannot jump.  ``tests/property/test_identify_guard
.py`` pins this over hypothesis-generated aging + temperature schedules.

Snapshots
---------

:meth:`FingerprintStore.export_json` serialises the whole store — sketch
spec, update policy, and every template version — deterministically
(sorted keys), so equal stores export equal bytes, the
export→import→export round trip is bitwise exact, and
:meth:`FingerprintStore.digest` is a stable content address for the full
versioned population.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .fingerprint import Fingerprint, dt_compatible
from .itdr import IIPCapture

__all__ = [
    "SketchSpec",
    "UpdatePolicy",
    "TemplateVersion",
    "IdentifyResult",
    "FingerprintStore",
]


# ----------------------------------------------------------------------
# the coarse index
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SketchSpec:
    """Shape of the coarse pre-filter sketch.

    Attributes:
        n_spectral: Complex rFFT bins kept (bin 1 upward — the DC bin of a
            canonical record is zero by construction).  Contributes
            ``2 * n_spectral`` real dimensions.
        n_projection: Rows of the fixed random orthonormal projection.
        projection_seed: Seed of the projection; a pure function of
            ``(projection_seed, record length)``, so rebuilding the index
            (import, re-enroll) reproduces the sketch bitwise.
    """

    n_spectral: int = 8
    n_projection: int = 16
    projection_seed: int = 0x1D

    def __post_init__(self) -> None:
        if self.n_spectral < 0 or self.n_projection < 0:
            raise ValueError("sketch dimensions must be non-negative")
        if self.n_spectral + self.n_projection == 0:
            raise ValueError("sketch must keep at least one dimension")

    def n_spectral_for(self, n_samples: int) -> int:
        """Spectral bins actually available for records of this length."""
        return min(self.n_spectral, max(0, n_samples // 2))

    def dim(self, n_samples: int) -> int:
        """Total sketch dimensionality for records of ``n_samples``."""
        return 2 * self.n_spectral_for(n_samples) + min(
            self.n_projection, n_samples
        )

    def projection(self, n_samples: int) -> np.ndarray:
        """The fixed ``(n_projection, n_samples)`` orthonormal projection."""
        k = min(self.n_projection, n_samples)
        if k == 0:
            return np.zeros((0, n_samples))
        rng = np.random.default_rng(
            np.random.SeedSequence([self.projection_seed, n_samples])
        )
        gauss = rng.standard_normal((n_samples, k))
        q, _ = np.linalg.qr(gauss)
        return q.T

    def sketch_rows(
        self, rows: np.ndarray, projection: np.ndarray
    ) -> np.ndarray:
        """Sketch a ``(B, N)`` batch of canonical rows into ``(B, D)``.

        Rows are unit-normalised in sketch space so the index mat-vec is
        a cosine similarity; an all-zero sketch (degenerate record) is
        left as zeros.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        n = rows.shape[1]
        k = self.n_spectral_for(n)
        parts = []
        if k > 0:
            spectrum = np.fft.rfft(rows, axis=1)[:, 1 : 1 + k]
            parts.append(spectrum.real)
            parts.append(spectrum.imag)
        if projection.shape[0] > 0:
            parts.append(rows @ projection.T)
        sketch = np.hstack(parts)
        norms = np.linalg.norm(sketch, axis=1, keepdims=True)
        return np.divide(
            sketch, norms, out=np.zeros_like(sketch), where=norms > 0
        )

    def to_dict(self) -> dict:
        return {
            "n_spectral": self.n_spectral,
            "n_projection": self.n_projection,
            "projection_seed": self.projection_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SketchSpec":
        return cls(
            n_spectral=int(data["n_spectral"]),
            n_projection=int(data["n_projection"]),
            projection_seed=int(data["projection_seed"]),
        )


# ----------------------------------------------------------------------
# drift policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UpdatePolicy:
    """The margin-guarded template-update rule (module docstring lemma).

    Attributes:
        threshold: Acceptance threshold on the exact similarity score.
        update_margin: Extra score above ``threshold`` a capture must
            clear before it may move a template.
        min_separation: Minimum rank-1 vs runner-up gap; an ambiguous
            identification never updates anything.
        alpha: Exponential blend weight per accepted update.
        max_versions: Version history depth kept per bus (oldest trimmed).
    """

    threshold: float = 0.85
    update_margin: float = 0.05
    min_separation: float = 0.05
    alpha: float = 0.1
    max_versions: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if self.update_margin < 0 or self.min_separation < 0:
            raise ValueError("margins must be non-negative")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.max_versions < 1:
            raise ValueError("max_versions must be >= 1")

    def may_update(
        self, score: float, runner_up_score: Optional[float]
    ) -> bool:
        """Whether an identification clears the update guard."""
        if score < self.threshold + self.update_margin:
            return False
        if runner_up_score is None:  # single-bus store: nothing to confuse
            return True
        return score - runner_up_score >= self.min_separation

    def to_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "update_margin": self.update_margin,
            "min_separation": self.min_separation,
            "alpha": self.alpha,
            "max_versions": self.max_versions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UpdatePolicy":
        return cls(
            threshold=float(data["threshold"]),
            update_margin=float(data["update_margin"]),
            min_separation=float(data["min_separation"]),
            alpha=float(data["alpha"]),
            max_versions=int(data["max_versions"]),
        )


@dataclass(frozen=True)
class TemplateVersion:
    """One entry in a bus's template history.

    Attributes:
        version: Monotonic per-bus counter (0 = the original enrollment).
        fingerprint: The template as of this version (canonical, frozen).
        origin: ``"enroll"`` or ``"update"``.
        score: The identification score that justified an update (None
            for enrollments).
    """

    version: int
    fingerprint: Fingerprint
    origin: str
    score: Optional[float] = None

    def digest(self) -> str:
        """Content address of this version's waveform."""
        return self.fingerprint.digest()

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "fingerprint": self.fingerprint.to_dict(),
            "origin": self.origin,
            "score": self.score,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TemplateVersion":
        return cls(
            version=int(data["version"]),
            fingerprint=Fingerprint.from_dict(data["fingerprint"]),
            origin=str(data["origin"]),
            score=None if data.get("score") is None else float(data["score"]),
        )


# ----------------------------------------------------------------------
# lookup outcome
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IdentifyResult:
    """Outcome of one 1:N lookup.

    The shortlist is ordered by **exact** score (ties broken by name), so
    ``bus`` is identical to brute force whenever the true best match made
    the shortlist (``score`` agrees to the last ulp — BLAS accumulates
    the shortlist gather and the full mat-vec with shape-dependent
    blocking).
    """

    bus: Optional[str]
    score: float
    accepted: bool
    runner_up: Optional[str]
    runner_up_score: Optional[float]
    shortlist: Tuple[str, ...]
    shortlist_scores: Tuple[float, ...]
    method: str

    @property
    def separation(self) -> Optional[float]:
        """Rank-1 minus runner-up score (None for a single-bus store)."""
        if self.runner_up_score is None:
            return None
        return self.score - self.runner_up_score


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class FingerprintStore:
    """Content-addressed 1:N identification database of enrolled IIPs.

    Args:
        sketch: Coarse index shape (default :class:`SketchSpec`).
        policy: Template-update guard (default :class:`UpdatePolicy`).
        shortlist_size: Candidates the sketch pre-filter hands to exact
            rescoring.

    All enrolled templates must share one record configuration (length
    and ``dt``) — the store serves one fleet datapath, and the canonical
    layer (:class:`Fingerprint`) guarantees per-template integrity.
    Template rows live in capacity-doubled ``(M, N)`` / ``(M, D)``
    matrices, so a lookup is two mat-vecs and a gather regardless of
    how the store was grown.
    """

    def __init__(
        self,
        sketch: Optional[SketchSpec] = None,
        policy: Optional[UpdatePolicy] = None,
        shortlist_size: int = 8,
    ) -> None:
        if shortlist_size < 1:
            raise ValueError("shortlist_size must be >= 1")
        self.sketch = sketch if sketch is not None else SketchSpec()
        self.policy = policy if policy is not None else UpdatePolicy()
        self.shortlist_size = shortlist_size
        self._n_samples: Optional[int] = None
        self._dt: Optional[float] = None
        self._projection: Optional[np.ndarray] = None
        self._versions: Dict[str, List[TemplateVersion]] = {}
        self._row_of: Dict[str, int] = {}
        self._names: List[str] = []
        self._samples: Optional[np.ndarray] = None
        self._sketches: Optional[np.ndarray] = None

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._versions)

    def __contains__(self, name: str) -> bool:
        return name in self._versions

    def names(self) -> List[str]:
        """Enrolled bus identities, sorted."""
        return sorted(self._versions)

    @property
    def record_length(self) -> Optional[int]:
        """Samples per template (None while empty)."""
        return self._n_samples

    @property
    def dt(self) -> Optional[float]:
        """Shared template time grid (None while empty)."""
        return self._dt

    def current(self, name: str) -> Fingerprint:
        """The live template for a bus (its newest version)."""
        return self._versions[name][-1].fingerprint

    def versions(self, name: str) -> Tuple[TemplateVersion, ...]:
        """A bus's template history, oldest first."""
        return tuple(self._versions[name])

    def digest(self) -> str:
        """Content address of the whole versioned population.

        Stable under insertion order (names are sorted) and process
        restarts; any template byte, version step, or policy change
        produces a new digest — the discipline a replicated fleet
        deployment uses to agree on "which enrollment database is this?".
        """
        h = hashlib.sha256()
        h.update(
            json.dumps(
                {
                    "sketch": self.sketch.to_dict(),
                    "policy": self.policy.to_dict(),
                    "shortlist_size": self.shortlist_size,
                },
                sort_keys=True,
            ).encode()
        )
        for name in self.names():
            for version in self._versions[name]:
                h.update(
                    f"{name}\x00{version.version}\x00{version.origin}"
                    f"\x00{version.score!r}\x00{version.digest()}\n".encode()
                )
        return h.hexdigest()

    # -- enrollment -----------------------------------------------------
    def _ensure_grid(self, fingerprint: Fingerprint) -> None:
        if self._n_samples is None:
            self._n_samples = len(fingerprint.samples)
            self._dt = float(fingerprint.dt)
            self._projection = self.sketch.projection(self._n_samples)
            dim = self.sketch.dim(self._n_samples)
            self._samples = np.empty((4, self._n_samples))
            self._sketches = np.empty((4, dim))
            return
        if len(fingerprint.samples) != self._n_samples:
            raise ValueError(
                f"record length {len(fingerprint.samples)} does not match "
                f"the store's {self._n_samples}"
            )
        if not dt_compatible(fingerprint.dt, self._dt):
            raise ValueError(
                f"dt {fingerprint.dt} does not match the store's {self._dt}"
            )

    def _set_row(self, name: str, samples: np.ndarray) -> None:
        row = self._row_of.get(name)
        if row is None:
            row = len(self._names)
            if row == len(self._samples):
                self._samples = np.concatenate(
                    [self._samples, np.empty_like(self._samples)]
                )
                self._sketches = np.concatenate(
                    [self._sketches, np.empty_like(self._sketches)]
                )
            self._names.append(name)
            self._row_of[name] = row
        self._samples[row] = samples
        self._sketches[row] = self.sketch.sketch_rows(
            samples[None, :], self._projection
        )[0]

    def enroll(self, fingerprint: Fingerprint) -> str:
        """Add a bus under its fingerprint name; returns the content digest.

        Re-enrolling the identical content is an idempotent no-op;
        enrolling different content under a taken name is an error (drift
        flows through :meth:`observe`, not silent overwrites).
        """
        name = fingerprint.name
        digest = fingerprint.digest()
        if name in self._versions:
            if self._versions[name][-1].digest() == digest:
                return digest
            raise ValueError(
                f"bus {name!r} already enrolled with different content; "
                "template evolution goes through observe()"
            )
        self._ensure_grid(fingerprint)
        self._versions[name] = [
            TemplateVersion(version=0, fingerprint=fingerprint, origin="enroll")
        ]
        self._set_row(name, fingerprint.samples)
        return digest

    def enroll_many(self, fingerprints: Sequence[Fingerprint]) -> List[str]:
        """Enroll a batch; returns the per-fingerprint digests."""
        return [self.enroll(fp) for fp in fingerprints]

    # -- lookup ---------------------------------------------------------
    def _canonical_query(self, samples: np.ndarray, dt: float) -> np.ndarray:
        if not self._versions:
            raise RuntimeError("identify on an empty store")
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1 or len(samples) != self._n_samples:
            raise ValueError(
                f"query length {samples.shape} does not match the store's "
                f"({self._n_samples},) records"
            )
        if not dt_compatible(dt, self._dt):
            raise ValueError(
                f"query dt {dt} does not match the store's {self._dt}"
            )
        return Fingerprint._canonicalize(samples)

    def _result_from_candidates(
        self, query: np.ndarray, candidates: np.ndarray, method: str
    ) -> IdentifyResult:
        """Exact-rescore ``candidates`` (row indices) and rank them."""
        exact = 0.5 * (1.0 + self._samples[candidates] @ query)
        order = sorted(
            range(len(candidates)),
            key=lambda i: (-exact[i], self._names[candidates[i]]),
        )
        shortlist = tuple(self._names[candidates[i]] for i in order)
        scores = tuple(float(exact[i]) for i in order)
        runner_up = shortlist[1] if len(shortlist) > 1 else None
        runner_up_score = scores[1] if len(scores) > 1 else None
        return IdentifyResult(
            bus=shortlist[0],
            score=scores[0],
            accepted=scores[0] >= self.policy.threshold,
            runner_up=runner_up,
            runner_up_score=runner_up_score,
            shortlist=shortlist,
            shortlist_scores=scores,
            method=method,
        )

    def identify_samples(
        self, samples: np.ndarray, dt: float, method: str = "sketch"
    ) -> IdentifyResult:
        """1:N lookup of a raw sample array (see :meth:`identify`)."""
        if method not in ("sketch", "brute"):
            raise ValueError("method must be 'sketch' or 'brute'")
        query = self._canonical_query(samples, dt)
        m = len(self._names)
        k = min(self.shortlist_size, m)
        if method == "brute" or m <= k:
            candidates = np.arange(m)
            if method == "sketch":
                method = "brute"  # the shortlist was the whole store
            return self._result_from_candidates(query, candidates, method)
        query_sketch = self.sketch.sketch_rows(
            query[None, :], self._projection
        )[0]
        coarse = self._sketches[:m] @ query_sketch
        candidates = np.argpartition(coarse, m - k)[m - k:]
        return self._result_from_candidates(query, candidates, "sketch")

    def identify(
        self, capture: IIPCapture, method: str = "sketch"
    ) -> IdentifyResult:
        """Which enrolled bus produced this capture?

        ``method="sketch"`` (default) runs the coarse index then exact
        rescoring on the shortlist; ``method="brute"`` scores every
        template exactly — the reference the index must agree with.
        """
        return self.identify_samples(
            capture.waveform.samples, capture.waveform.dt, method=method
        )

    def identify_stack(
        self, stack: np.ndarray, dt: float, method: str = "sketch"
    ) -> List[IdentifyResult]:
        """Batched lookup of a ``(B, N)`` capture stack.

        The sketch pass for all queries is one ``(B, D) @ (D, M)`` matmul
        — the shape fleet-scale identification scans batched through
        ``ITDR.capture_stack`` arrive in.
        """
        stack = np.atleast_2d(np.asarray(stack, dtype=float))
        if method not in ("sketch", "brute"):
            raise ValueError("method must be 'sketch' or 'brute'")
        m = len(self._names)
        k = min(self.shortlist_size, m)
        queries = np.stack(
            [self._canonical_query(row, dt) for row in stack]
        )
        if method == "brute" or m <= k:
            return [
                self._result_from_candidates(q, np.arange(m), "brute")
                for q in queries
            ]
        sketches = self.sketch.sketch_rows(queries, self._projection)
        coarse = sketches @ self._sketches[:m].T
        results = []
        for q, row in zip(queries, coarse):
            candidates = np.argpartition(row, m - k)[m - k:]
            results.append(
                self._result_from_candidates(q, candidates, "sketch")
            )
        return results

    # -- drift-aware updates --------------------------------------------
    def observe(
        self, capture: IIPCapture, method: str = "sketch"
    ) -> Tuple[IdentifyResult, bool]:
        """Identify a capture and, if the guard allows, track drift.

        Returns ``(result, updated)``.  The template only moves when the
        :class:`UpdatePolicy` guard holds (see the module docstring);
        an update blends the current template toward the capture by
        ``alpha`` and appends a new :class:`TemplateVersion`.
        """
        result = self.identify(capture, method=method)
        if not self.policy.may_update(result.score, result.runner_up_score):
            return result, False
        name = result.bus
        history = self._versions[name]
        old = history[-1].fingerprint
        query = self._canonical_query(
            capture.waveform.samples, capture.waveform.dt
        )
        blended = (1.0 - self.policy.alpha) * old.samples \
            + self.policy.alpha * query
        updated = Fingerprint(
            name=name,
            samples=blended,
            dt=old.dt,
            n_captures=old.n_captures,
            enrolled_temperature_c=old.enrolled_temperature_c,
        )
        history.append(
            TemplateVersion(
                version=history[-1].version + 1,
                fingerprint=updated,
                origin="update",
                score=result.score,
            )
        )
        del history[: max(0, len(history) - self.policy.max_versions)]
        self._set_row(name, updated.samples)
        return result, True

    # -- snapshots ------------------------------------------------------
    def export_json(self) -> str:
        """Deterministic JSON snapshot of the whole store.

        Sorted keys end to end, so equal stores export equal bytes and
        export→import→export round-trips bitwise (canonical samples are
        bit-idempotent through JSON's exact float round trip).
        """
        return json.dumps(
            {
                "sketch": self.sketch.to_dict(),
                "policy": self.policy.to_dict(),
                "shortlist_size": self.shortlist_size,
                "buses": {
                    name: [v.to_dict() for v in history]
                    for name, history in self._versions.items()
                },
            },
            sort_keys=True,
        )

    @classmethod
    def import_json(cls, payload: str) -> "FingerprintStore":
        """Rebuild a store (index included) from :meth:`export_json`.

        The sketch index is recomputed from the template samples; because
        the projection is a pure function of (seed, record length), the
        restored store identifies byte-identically to the original.
        """
        data = json.loads(payload)
        store = cls(
            sketch=SketchSpec.from_dict(data["sketch"]),
            policy=UpdatePolicy.from_dict(data["policy"]),
            shortlist_size=int(data["shortlist_size"]),
        )
        for name in sorted(data["buses"]):
            history = [
                TemplateVersion.from_dict(entry)
                for entry in data["buses"][name]
            ]
            if not history:
                raise ValueError(f"bus {name!r} has an empty history")
            store._ensure_grid(history[0].fingerprint)
            store._versions[name] = history
            store._set_row(name, history[-1].fingerprint.samples)
        return store
