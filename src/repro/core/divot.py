"""The DIVOT endpoint and two-way channel (paper section III).

An endpoint is the iTDR plus decision logic living in one chip's bus
interface — the CPU-side memory controller or the memory-module-side control
logic.  Its life has three phases:

* **calibration** — measure the bus IIP repeatedly, average, store in ROM;
* **monitoring** — every capture is authenticated against the ROM and
  checked for tamper signatures, concurrently with normal traffic;
* **reaction** — a failed authentication blocks operations until the
  fingerprint matches again (module swap / wrong requester); a tamper
  signature raises an alert with the estimated location.

Two endpoints facing each other across one line form a
:class:`DivotChannel` — the two-way authentication the paper's memory-bus
design performs (the CPU verifies the module and bus; the module verifies
the CPU and bus).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence


from ..txline.line import TransmissionLine
from .auth import AuthDecision, Authenticator
from .fingerprint import Fingerprint, FingerprintROM
from .itdr import ITDR, IIPCapture
from .tamper import TamperDetector, TamperVerdict

__all__ = [
    "EndpointState",
    "Action",
    "MonitorResult",
    "DivotEndpoint",
    "DivotChannel",
]


class EndpointState(enum.Enum):
    """Lifecycle state of a DIVOT endpoint."""

    UNCALIBRATED = "uncalibrated"
    MONITORING = "monitoring"
    BLOCKED = "blocked"


class Action(enum.Enum):
    """Reaction the endpoint commands after a monitoring capture."""

    PROCEED = "proceed"
    BLOCK = "block"
    ALERT = "alert"


@dataclass(frozen=True)
class MonitorResult:
    """Everything one monitoring capture produced."""

    capture: IIPCapture
    auth: AuthDecision
    tamper: TamperVerdict
    action: Action
    state: EndpointState


class DivotEndpoint:
    """One side of a DIVOT-protected bus.

    Attributes:
        name: Endpoint identity (e.g. ``"cpu-ddr-ctl"``).
        itdr: The measurement engine.
        authenticator: Similarity thresholder.
        tamper_detector: Error-function thresholder/localiser.
        rom: Local fingerprint store.
    """

    def __init__(
        self,
        name: str,
        itdr: ITDR,
        authenticator: Authenticator,
        tamper_detector: TamperDetector,
        captures_per_check: int = 1,
    ) -> None:
        if captures_per_check < 1:
            raise ValueError("captures_per_check must be >= 1")
        self.name = name
        self.itdr = itdr
        self.authenticator = authenticator
        self.tamper_detector = tamper_detector
        #: Captures averaged per monitoring decision.  Authentication works
        #: from a single capture; small tamper signatures (magnetic probes)
        #: need the averaging headroom, mirroring the paper's practice of
        #: reporting IIPs over 8192 measurements.
        self.captures_per_check = captures_per_check
        self.rom = FingerprintROM()
        self.state = EndpointState.UNCALIBRATED
        self.alert_log: List[MonitorResult] = []

    # ------------------------------------------------------------------
    def calibrate(
        self,
        line: TransmissionLine,
        n_captures: int = 8,
        temperature_c: float = 23.0,
        engine: str = "born",
    ) -> Fingerprint:
        """Enrollment: measure, average, store, enter monitoring.

        Performed at manufacturing or installation time (paper III,
        "Calibration process").  The enrollment captures come from one
        batch-engine call — one physics solve for the whole averaging run.
        """
        if n_captures < 1:
            raise ValueError("n_captures must be >= 1")
        stack = self.itdr.capture_stack(line, n_captures, engine=engine)
        fingerprint = Fingerprint.from_stack(
            stack,
            dt=self.itdr.pll.phase_step,
            name=line.name,
            enrolled_temperature_c=temperature_c,
        )
        self.rom.store(fingerprint)
        self.state = EndpointState.MONITORING
        return fingerprint

    # ------------------------------------------------------------------
    def monitor_capture(
        self,
        line: TransmissionLine,
        modifiers: Sequence = (),
        interference=None,
        engine: str = "born",
    ) -> MonitorResult:
        """One monitoring cycle: capture, authenticate, tamper-check, react.

        Reaction policy (paper III, "Reaction to counter attacks"):

        * authentication failure -> BLOCK and stay blocked until a later
          capture matches again (avoids replay / wrong-device traffic);
        * tamper signature with valid authentication -> ALERT (sensitive
          data protection hooks go here) while continuing to monitor;
        * clean capture -> PROCEED, and a blocked endpoint recovers.
        """
        if self.state is EndpointState.UNCALIBRATED:
            raise RuntimeError(
                f"endpoint {self.name!r} must calibrate before monitoring"
            )
        reference = self.rom.load(line.name)
        capture = self.itdr.capture_averaged(
            line,
            self.captures_per_check,
            modifiers=modifiers,
            interference=interference,
            engine=engine,
        )
        auth = self.authenticator.decide(capture, reference)
        tamper = self.tamper_detector.check(capture, reference)
        if not auth.accepted:
            action = Action.BLOCK
            self.state = EndpointState.BLOCKED
        elif tamper.tampered:
            action = Action.ALERT
            self.state = EndpointState.MONITORING
        else:
            action = Action.PROCEED
            self.state = EndpointState.MONITORING
        result = MonitorResult(
            capture=capture,
            auth=auth,
            tamper=tamper,
            action=action,
            state=self.state,
        )
        if action is not Action.PROCEED:
            self.alert_log.append(result)
        return result

    @property
    def is_blocked(self) -> bool:
        """Whether the endpoint currently refuses data operations."""
        return self.state is EndpointState.BLOCKED

    # ------------------------------------------------------------------
    # multi-lane monitoring (the paper's multi-wire direction, in the
    # endpoint: a bus is clock + strobes + command lanes, each with its
    # own fingerprint, and an attacker must pass them all)
    # ------------------------------------------------------------------
    def calibrate_many(
        self,
        lines: Sequence[TransmissionLine],
        n_captures: int = 8,
        temperature_c: float = 23.0,
        engine: str = "born",
    ) -> List[Fingerprint]:
        """Enroll several lanes of one bus; enters monitoring.

        One batch-engine call per lane — the lane fan-out stays in Python
        but each lane's averaging run is a single vectorised pass.
        """
        if not lines:
            raise ValueError("at least one lane is required")
        fingerprints = []
        for line in lines:
            stack = self.itdr.capture_stack(line, n_captures, engine=engine)
            fingerprint = Fingerprint.from_stack(
                stack,
                dt=self.itdr.pll.phase_step,
                name=line.name,
                enrolled_temperature_c=temperature_c,
            )
            self.rom.store(fingerprint)
            fingerprints.append(fingerprint)
        self.state = EndpointState.MONITORING
        return fingerprints

    def monitor_multi(
        self,
        lines: Sequence[TransmissionLine],
        modifiers: Sequence = (),
        modifiers_by_lane: Optional[dict] = None,
        interference=None,
        engine: str = "born",
    ) -> MonitorResult:
        """One monitoring cycle fused across every lane of the bus.

        Authentication uses min-fusion — every lane must match its own
        fingerprint (an attacker must counterfeit the whole bundle).  The
        tamper verdict is the worst lane's; its location is reported.  The
        returned :class:`MonitorResult` carries the weakest lane's capture.

        ``modifiers`` applies to every lane (environmental conditions hit
        the whole board); ``modifiers_by_lane`` maps a lane name to the
        extra modifiers touching that conductor alone (a physical attack
        lands on one wire).  ``interference`` couples into the comparator
        on every lane (EMI is a board-level condition), matching
        :meth:`monitor_capture`.
        """
        if self.state is EndpointState.UNCALIBRATED:
            raise RuntimeError(
                f"endpoint {self.name!r} must calibrate before monitoring"
            )
        if not lines:
            raise ValueError("at least one lane is required")
        modifiers_by_lane = modifiers_by_lane or {}
        worst_auth: Optional[AuthDecision] = None
        worst_tamper: Optional[TamperVerdict] = None
        worst_capture = None
        for line in lines:
            reference = self.rom.load(line.name)
            lane_modifiers = list(modifiers) + list(
                modifiers_by_lane.get(line.name, ())
            )
            capture = self.itdr.capture_averaged(
                line,
                self.captures_per_check,
                modifiers=lane_modifiers,
                interference=interference,
                engine=engine,
            )
            auth = self.authenticator.decide(capture, reference)
            tamper = self.tamper_detector.check(capture, reference)
            if worst_auth is None or auth.score < worst_auth.score:
                worst_auth = auth
                worst_capture = capture
            if worst_tamper is None or (
                tamper.peak_error > worst_tamper.peak_error
            ):
                worst_tamper = tamper
        if not worst_auth.accepted:
            action = Action.BLOCK
            self.state = EndpointState.BLOCKED
        elif worst_tamper.tampered:
            action = Action.ALERT
            self.state = EndpointState.MONITORING
        else:
            action = Action.PROCEED
            self.state = EndpointState.MONITORING
        result = MonitorResult(
            capture=worst_capture,
            auth=worst_auth,
            tamper=worst_tamper,
            action=action,
            state=self.state,
        )
        if action is not Action.PROCEED:
            self.alert_log.append(result)
        return result


@dataclass
class ChannelStepResult:
    """Both endpoints' monitoring outcomes for one channel step."""

    master: MonitorResult
    slave: MonitorResult

    @property
    def data_allowed(self) -> bool:
        """Two-way gate: traffic flows only when *both* ends proceed.

        The paper gates the column access on the module side and memory
        operations on the CPU side; either side can veto.
        """
        return (
            self.master.action is not Action.BLOCK
            and self.slave.action is not Action.BLOCK
        )


class DivotChannel:
    """A bus protected by DIVOT endpoints at both ends.

    Both endpoints measure the *same* physical line (the fingerprint covers
    the entire path between the two iTDRs, as the paper specifies), but each
    keeps its own ROM and makes its own decision — two-way authentication.
    """

    def __init__(
        self,
        line: TransmissionLine,
        master: DivotEndpoint,
        slave: DivotEndpoint,
    ) -> None:
        self.line = line
        self.master = master
        self.slave = slave

    def calibrate(self, n_captures: int = 8) -> None:
        """Pair the endpoints: both enroll the shared line."""
        self.master.calibrate(self.line, n_captures=n_captures)
        self.slave.calibrate(self.line, n_captures=n_captures)

    def step(
        self,
        modifiers: Sequence = (),
        line_override: Optional[TransmissionLine] = None,
        slave_line_override: Optional[TransmissionLine] = None,
        interference=None,
        engine: str = "born",
    ) -> ChannelStepResult:
        """One concurrent monitoring cycle on both ends.

        ``line_override`` substitutes what the master actually measures
        (e.g. the module was swapped); ``slave_line_override`` what the
        slave measures (e.g. the module now sits in an attacker's machine
        and sees a foreign bus).  The overridden line keeps the original
        line's *name* for ROM lookup — the attacker cannot rename physics.
        """
        master_line = self._named_like(line_override)
        slave_line = self._named_like(slave_line_override)
        master_result = self.master.monitor_capture(
            master_line, modifiers, interference=interference, engine=engine
        )
        slave_result = self.slave.monitor_capture(
            slave_line, modifiers, interference=interference, engine=engine
        )
        return ChannelStepResult(master=master_result, slave=slave_result)

    def _named_like(
        self, override: Optional[TransmissionLine]
    ) -> TransmissionLine:
        if override is None:
            return self.line
        return TransmissionLine(
            name=self.line.name,
            board_profile=override.board_profile,
            material=override.material,
            receiver=override.receiver,
        )
