"""DIVOT core: the paper's primary contribution.

The integrated TDR (comparator + APC + PDM + ETS + trigger), fingerprint
enrollment and storage, similarity/ROC/EER authentication math, tamper
detection with localisation, the endpoint/channel state machines of the
calibration-monitoring-reaction protocol, and the hardware overhead and
latency models.
"""

from .adaptive import AdaptiveReference, MultiConditionAuthenticator
from .apc import APCConverter, MixtureCdfInverter, apc_sensitivity
from .auth import (
    AuthDecision,
    Authenticator,
    RocCurve,
    capture_similarity,
    equal_error_rate,
    error_function,
    roc_curve,
    similarity,
)
from .comparator import Comparator
from .config import (
    PROTOTYPE_N_LINES,
    PROTOTYPE_N_MEASUREMENTS,
    prototype_itdr,
    prototype_itdr_config,
    prototype_line_factory,
)
from .divot import (
    Action,
    ChannelStepResult,
    DivotChannel,
    DivotEndpoint,
    EndpointState,
    MonitorResult,
)
from .ets import ETSSampler, PhaseSteppingPLL
from .fingerprint import Fingerprint, FingerprintROM
from .faults import (
    FaultInjector,
    FaultSpec,
    FleetDispatchError,
    RetryPolicy,
    ShardHealth,
)
from .fleet import (
    FleetIdentifyOutcome,
    FleetIdentifyRecord,
    FleetRecord,
    FleetScanExecutor,
    FleetScanOutcome,
    available_workers,
    partition_fleet,
    spawn_bus_streams,
)
from .identify import (
    FingerprintStore,
    IdentifyResult,
    SketchSpec,
    TemplateVersion,
    UpdatePolicy,
)
from .itdr import IIPCapture, ITDR, ITDRConfig, MeasurementBudget
from .latency import LatencyModel, LatencyPoint
from .solvecache import SolveCache, process_solve_cache
from .manager import ScanOutcome, SharedITDRManager
from .transport import (
    ArrayRef,
    BufferRef,
    ShardArena,
    ShmPayload,
    shared_memory_available,
)
from .multiwire import (
    FUSION_POLICIES,
    MultiWireAuthenticator,
    MultiWireDecision,
)
from .pdm import PDMScheme, TriangleWave, VernierRelation
from .resources import XCZU7EV, ResourceModel, ResourceReport, RTLBlock
from .runtime import (
    Cadence,
    EventLog,
    MonitorEvent,
    MonitorRuntime,
    PeriodicCadence,
    RoundRobinCadence,
    Telemetry,
    TriggerBudgetCadence,
)
from .tamper import TamperDetector, TamperVerdict, calibrate_threshold
from .trigger import TriggerGenerator, trigger_rate

__all__ = [
    "Comparator",
    "APCConverter",
    "MixtureCdfInverter",
    "apc_sensitivity",
    "PDMScheme",
    "TriangleWave",
    "VernierRelation",
    "ETSSampler",
    "PhaseSteppingPLL",
    "TriggerGenerator",
    "trigger_rate",
    "ITDR",
    "ITDRConfig",
    "IIPCapture",
    "MeasurementBudget",
    "Fingerprint",
    "FingerprintROM",
    "FingerprintStore",
    "IdentifyResult",
    "SketchSpec",
    "TemplateVersion",
    "UpdatePolicy",
    "similarity",
    "capture_similarity",
    "error_function",
    "roc_curve",
    "RocCurve",
    "equal_error_rate",
    "Authenticator",
    "AuthDecision",
    "TamperDetector",
    "TamperVerdict",
    "calibrate_threshold",
    "DivotEndpoint",
    "DivotChannel",
    "ChannelStepResult",
    "FaultInjector",
    "FaultSpec",
    "FleetDispatchError",
    "RetryPolicy",
    "ShardHealth",
    "ArrayRef",
    "BufferRef",
    "ShardArena",
    "ShmPayload",
    "shared_memory_available",
    "FleetIdentifyOutcome",
    "FleetIdentifyRecord",
    "FleetRecord",
    "FleetScanExecutor",
    "FleetScanOutcome",
    "available_workers",
    "partition_fleet",
    "spawn_bus_streams",
    "SolveCache",
    "process_solve_cache",
    "EndpointState",
    "Action",
    "MonitorResult",
    "ResourceModel",
    "ResourceReport",
    "RTLBlock",
    "XCZU7EV",
    "LatencyModel",
    "LatencyPoint",
    "MultiWireAuthenticator",
    "MultiWireDecision",
    "FUSION_POLICIES",
    "SharedITDRManager",
    "ScanOutcome",
    "Cadence",
    "PeriodicCadence",
    "TriggerBudgetCadence",
    "RoundRobinCadence",
    "EventLog",
    "MonitorEvent",
    "MonitorRuntime",
    "Telemetry",
    "AdaptiveReference",
    "MultiConditionAuthenticator",
    "PROTOTYPE_N_MEASUREMENTS",
    "PROTOTYPE_N_LINES",
    "prototype_line_factory",
    "prototype_itdr_config",
    "prototype_itdr",
]
