"""Measurement-time and detection-latency model.

The paper's headline timing result: "both authentication and tamper
detection can be completed within 50 us" at the prototype's 156.25 MHz, with
the remark that GHz clocks in production parts bring detection inside the
memory-operation time frame.  One capture's time budget is set by

    triggers = ceil(points / points_per_trigger) * repetitions
    time     = triggers / trigger_rate

where the trigger rate is the clock frequency on the clock lane and roughly
a quarter of the bit rate on a random-data lane (a specific bit pair fires
the trigger).  This module evaluates that budget across clock rates, lane
types, and accuracy settings — the latency experiment's engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from .itdr import ITDRConfig, MeasurementBudget
from .trigger import TriggerGenerator

__all__ = ["LatencyPoint", "LatencyModel"]


@dataclass(frozen=True)
class LatencyPoint:
    """Detection latency at one operating point."""

    clock_frequency: float
    lane: str
    n_points: int
    repetitions: int
    n_triggers: int
    capture_time_s: float
    compare_time_s: float

    @property
    def detection_latency_s(self) -> float:
        """Capture plus fingerprint-comparison pipeline time."""
        return self.capture_time_s + self.compare_time_s


class LatencyModel:
    """Evaluates capture/detection time across operating points.

    Attributes:
        config: Baseline iTDR configuration (its clock frequency is
            overridden per evaluation point).
        n_points: ETS record length in points.
    """

    def __init__(self, config: ITDRConfig, n_points: int) -> None:
        if n_points < 1:
            raise ValueError("n_points must be >= 1")
        self.config = config
        self.n_points = n_points

    # ------------------------------------------------------------------
    def budget_at(
        self, clock_frequency: float, clock_lane: bool = True
    ) -> MeasurementBudget:
        """The measurement budget at a given clock and lane type."""
        if clock_frequency <= 0:
            raise ValueError("clock_frequency must be positive")
        from .itdr import ITDR  # local import avoids a cycle at module load

        cfg = replace(
            self.config,
            clock_frequency=clock_frequency,
            trigger=TriggerGenerator(clock_lane=clock_lane),
        )
        itdr = ITDR(cfg)
        return itdr.budget(self.n_points)

    def point(
        self, clock_frequency: float, clock_lane: bool = True
    ) -> LatencyPoint:
        """Full latency evaluation at one operating point.

        Comparison time: similarity and error function are streaming
        multiply-accumulate pipelines — one point per clock after the
        capture completes.
        """
        budget = self.budget_at(clock_frequency, clock_lane)
        compare_time = self.n_points / clock_frequency
        return LatencyPoint(
            clock_frequency=clock_frequency,
            lane="clock" if clock_lane else "data",
            n_points=self.n_points,
            repetitions=self.config.repetitions,
            n_triggers=budget.n_triggers,
            capture_time_s=budget.duration_s,
            compare_time_s=compare_time,
        )

    def sweep(
        self,
        clock_frequencies: Sequence[float],
        clock_lane: bool = True,
    ) -> List[LatencyPoint]:
        """Latency at each clock frequency (the GHz-scaling series)."""
        return [self.point(f, clock_lane) for f in clock_frequencies]

    def repetition_tradeoff(
        self, repetitions_values: Sequence[int], clock_frequency: float
    ) -> List[LatencyPoint]:
        """Latency versus APC repetition count (accuracy/time ablation)."""
        points = []
        for r in repetitions_values:
            if r < 1:
                raise ValueError("repetitions must be >= 1")
            model = LatencyModel(
                replace(self.config, repetitions=r), self.n_points
            )
            points.append(model.point(clock_frequency))
        return points
