"""Prototype configuration: the paper's experimental setup in one place.

Section IV-A's setup — six 25 cm traces on a 6-layer PCB, a ZCU104 FPGA,
156.25 MHz clocking, 8192 measurements per result — is reproduced by these
factory functions so every experiment and example starts from the same
calibrated operating point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..txline.factory import LineFactory, LineGeometry
from .itdr import ITDR, ITDRConfig

__all__ = [
    "PROTOTYPE_N_MEASUREMENTS",
    "PROTOTYPE_N_LINES",
    "prototype_line_factory",
    "prototype_itdr_config",
    "prototype_itdr",
]

#: "All results were obtained over 8,192 measurements" (Fig. 7 caption).
PROTOTYPE_N_MEASUREMENTS = 8192

#: "Six 25cm PCB Tx-lines are used as devices under test."
PROTOTYPE_N_LINES = 6


def prototype_line_factory(attach_receiver: bool = False) -> LineFactory:
    """The custom-PCB manufacturing model of the prototype.

    ``attach_receiver=True`` populates the far end with a receiver chip
    (for chip-swap experiments); the bare default matches the paper's
    terminated test traces.
    """
    return LineFactory(
        geometry=LineGeometry(),
        impedance_sigma=0.010,
        correlation_length_m=5.0e-3,
        attach_receiver=attach_receiver,
    )


def prototype_itdr_config(**overrides) -> ITDRConfig:
    """The prototype's iTDR operating point, with keyword overrides.

    The defaults put the APC in its sweet spot: reflection signals at the
    comparator sit within the PDM-widened linear window, and the
    repetition count makes one capture cost ~8k triggers — about 50 us at
    156.25 MHz, the paper's quoted figure.
    """
    return ITDRConfig(**overrides)


def prototype_itdr(
    rng: Optional[np.random.Generator] = None, **overrides
) -> ITDR:
    """A ready-to-measure prototype iTDR (seed the rng for reproducibility)."""
    return ITDR(prototype_itdr_config(**overrides), rng=rng)
