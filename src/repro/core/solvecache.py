"""Process-wide content-addressed memo for physics solves.

The reflected-waveform solve is the expensive step of every capture, and
its result is a pure function of content: the resolved impedance profile,
the probe edge, the coupling, the engine, and the record length.  PR 1
memoised it per iTDR; this module extends the memo to the process, so
*every* iTDR in a worker — the fleet keeps one per configuration digest,
experiments construct them freely — shares one pool of solved states.

Two levels cooperate (see :meth:`repro.core.itdr.ITDR.true_reflection`):

* **L1** — the per-iTDR LRU (``ITDRConfig.reflection_cache_size``), the
  fast path for the overwhelmingly common repeat-capture-of-one-state
  loops;
* **L2** — the :func:`process_solve_cache` singleton here, keyed by the
  same content-addressed tuple, which turns cross-iTDR and cross-scan
  repeats into hits instead of fresh solves.

The counters are solve accounting, not dict accounting: ``hits`` counts
solves *avoided* (whether L1 or L2 satisfied the request — the iTDR
reports L1 hits via :meth:`SolveCache.record_hit`), ``misses`` counts
solves performed, ``evictions`` counts entries dropped by the LRU bound.
``hits + misses`` therefore equals the number of solve requests.  Fleet
workers snapshot the counters around each shard and ship the delta home,
where :meth:`repro.core.runtime.Telemetry.record_cache` folds it into the
``health.solve_cache`` section of every snapshot.

Caching is safe because cached values are immutable by convention
(:class:`~repro.signals.waveform.Waveform` is a frozen dataclass and no
consumer writes through ``.samples``) and keys are content hashes — an
in-place mutation of a line changes its hash and can never serve stale
physics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

__all__ = ["SolveCache", "process_solve_cache"]


class SolveCache:
    """A bounded LRU memo with solve-level hit/miss/eviction counters."""

    #: Counter names, in the order they appear in :meth:`stats`.
    COUNTER_KEYS = ("hits", "misses", "evictions")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[object]:
        """The cached value, counting the lookup; None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def record_hit(self) -> None:
        """Count a solve avoided by a faster layer (the per-iTDR L1)."""
        self.hits += 1

    def put(self, key: Hashable, value: object) -> None:
        """Store one solved value, evicting least-recently-used over capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        """Counters plus occupancy, a plain JSON-ready dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


#: The per-process L2 instance.  Module-level so pool workers each get
#: their own on first import — no cross-process sharing to reason about.
_PROCESS_CACHE = SolveCache()


def process_solve_cache() -> SolveCache:
    """This process's shared solve memo."""
    return _PROCESS_CACHE
