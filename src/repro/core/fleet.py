"""Sharded fleet scans: one datapath design, many cores, one outcome.

The paper's scaling argument (sections I and V) is that one shared iTDR
datapath protects many buses; :class:`~repro.core.manager.SharedITDRManager`
exposes the resulting linear detection-latency curve, but every scan still
runs on one core.  The expensive part we simulate — the physics solve plus
the ``(N, points)`` probability pass of ``ITDR.capture_stack`` — is
embarrassingly parallel across buses, so a fleet partitions cleanly into
shards, each shard running on its own process.

Determinism is the design constraint, not an afterthought:

* every bus gets its own child of one ``np.random.SeedSequence`` root,
  spawned **in the parent, in registration order** — the stream a bus
  consumes is a pure function of (seed, operation index, bus index) and
  can never depend on which shard, process, or backend executed it;
* each worker rebinds its persistent iTDR's generator to the visiting
  bus's stream before measuring, so a fleet scan's outcome is byte-
  identical across ``shards=1`` serial and ``shards=K`` parallel;
* merged events are ordered by bus registration index and timestamped by
  the parent's :class:`~repro.core.runtime.RoundRobinCadence` clock, so
  the unified runtime (event log, telemetry, latency arithmetic) sees the
  same stream a one-core scan would have produced.

Worker processes are reused across scans (the pool stays open for the
executor's lifetime) and each keeps one iTDR per configuration digest, so
the content-hash-keyed reflection cache stays warm: re-scanning an
unchanged fleet pays zero physics solves per worker after the first pass.

Worker failure is an expected event, not an abort: dispatch runs every
shard through the :mod:`~repro.core.faults` recovery ladder (bounded
retries with backoff, pool teardown and rebuild on a broken pool or a
hung worker, in-parent serial re-execution as the terminal rung).
Because the per-bus seed streams above are spawned before any dispatch,
a retried or serially re-run shard measures exactly what the first
attempt would have — recovery is invisible in ``canonical_bytes`` and
visible only in the ``degraded``/``shard_health`` provenance.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..signals.waveform import Waveform
from ..txline.line import TransmissionLine
from .auth import Authenticator
from .divot import Action, DivotEndpoint, EndpointState, MonitorResult
from .faults import (
    SERIAL_FALLBACK,
    AttemptFailure,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    ShardHealth,
    run_with_recovery,
)
from .fingerprint import Fingerprint
from .identify import FingerprintStore, SketchSpec, UpdatePolicy
from .itdr import IIPCapture, ITDR, ITDRConfig
from .resources import ResourceModel, ResourceReport
from .runtime import MonitorEvent, MonitorRuntime, RoundRobinCadence, Telemetry
from .solvecache import SolveCache, process_solve_cache
from .tamper import TamperDetector
from .transport import (
    TRANSPORT_COUNTER_KEYS,
    ArrayRef,
    ShardArena,
    ShmPayload,
    content_digest,
    materialize,
    pack_into,
    pack_seed,
    read_array,
    shared_memory_available,
    unpack_seed,
    worker_transport_stats,
    writable_array,
)

__all__ = [
    "FleetIdentifyOutcome",
    "FleetIdentifyRecord",
    "FleetRecord",
    "FleetScanOutcome",
    "FleetScanExecutor",
    "available_workers",
    "merge_shard_outputs",
    "partition_fleet",
    "spawn_bus_streams",
]


# ----------------------------------------------------------------------
# pure sharding arithmetic (property-tested in tests/property/)
# ----------------------------------------------------------------------
def partition_fleet(n_items: int, shards: int) -> List[List[int]]:
    """Split ``range(n_items)`` into ``shards`` contiguous balanced chunks.

    Every index lands in exactly one shard, chunk sizes differ by at most
    one, and concatenating the chunks recovers registration order —
    the invariants the deterministic merge relies on.  Shards beyond the
    item count come back empty rather than erroring, so a 4-shard
    executor handles a 2-bus fleet.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    base, extra = divmod(n_items, shards)
    chunks, start = [], 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


def spawn_bus_streams(
    root: np.random.SeedSequence, n_buses: int
) -> List[np.random.SeedSequence]:
    """One child seed stream per bus, spawned in registration order.

    Spawning happens in the parent before any partitioning, so the
    stream bus ``i`` consumes is identical no matter how the fleet is
    sharded — the invariant that makes serial and parallel scans
    byte-identical.  Successive calls on the same root keep advancing
    its spawn counter, giving later operations (each scan) fresh but
    reproducible streams.
    """
    if n_buses < 1:
        raise ValueError("n_buses must be >= 1")
    return root.spawn(n_buses)


# ----------------------------------------------------------------------
# records crossing the process boundary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetRecord:
    """One bus's monitoring outcome within a fleet scan.

    The flattened, picklable projection of a
    :class:`~repro.core.divot.MonitorResult` that travels back from a
    shard worker.  ``shard`` is provenance only: every other field is a
    pure function of (fleet, seed, bus) and independent of sharding.
    """

    index: int
    bus: str
    shard: int
    action: Action
    score: float
    tampered: bool
    location_m: Optional[float]
    #: Peak of the smoothed error function E_xy this visit measured —
    #: the tamper detector's decision statistic, carried home so
    #: threshold sweeps (ROC curves, campaign frontiers) can re-judge
    #: the same measurement at any operating point.  Measurement
    #: content, so included in the canonical bytes.
    peak_error: float = 0.0
    #: Provenance like ``shard``: how this bus's shard got done when it
    #: needed recovery ("retried" / "serial_fallback"), None when the
    #: first attempt succeeded.  Excluded from the canonical bytes.
    recovery: Optional[str] = None
    #: Registry name of the bus's protected-link protocol, stamped by the
    #: parent from its registration table.  Registration metadata rather
    #: than measurement content, so excluded from the canonical bytes
    #: (it is a pure function of the fleet, not of the scan).
    protocol: Optional[str] = None

    @property
    def is_alert(self) -> bool:
        """Whether this bus demands a reaction (non-PROCEED)."""
        return self.action is not Action.PROCEED

    @classmethod
    def from_result(
        cls, index: int, bus: str, shard: int, result: MonitorResult
    ) -> "FleetRecord":
        """Flatten one endpoint decision for the trip home."""
        return cls(
            index=index,
            bus=bus,
            shard=shard,
            action=result.action,
            score=result.auth.score,
            tampered=result.tamper.tampered,
            location_m=result.tamper.location_m,
            peak_error=result.tamper.peak_error,
        )


@dataclass(frozen=True)
class FleetScanOutcome:
    """One full fleet scan, records in bus registration order.

    ``degraded`` and ``shard_health`` are recovery provenance: whether
    any shard needed the retry/fallback ladder, and the per-shard
    attempt/fault accounting.  Like the ``shard`` labels they are
    excluded from :meth:`canonical_bytes` — recovery may change where
    and when a shard ran, never what it measured.
    """

    records: Tuple[FleetRecord, ...]
    shards: int
    backend: str
    degraded: bool = False
    shard_health: Tuple[ShardHealth, ...] = ()

    def alerts(self) -> List[Tuple[str, FleetRecord]]:
        """(bus name, record) pairs that did not PROCEED."""
        return [(r.bus, r) for r in self.records if r.is_alert]

    def all_clear(self) -> bool:
        """Whether every bus authenticated cleanly this scan."""
        return not self.alerts()

    def canonical_bytes(self) -> bytes:
        """Deterministic serialisation of the shard-independent outcome.

        Serial ``shards=1`` and parallel ``shards=K`` scans of the same
        fleet and seed produce identical bytes — the byte-identity
        contract ``tests/core/test_fleet.py`` pins.  The ``shard`` and
        ``recovery`` provenance labels (and the outcome-level
        ``degraded``/``shard_health``) are excluded because they are
        the fields that legitimately vary with the partition and with
        worker failures.
        """
        payload = tuple(
            (r.index, r.bus, r.action.value, r.score, r.tampered,
             r.location_m, r.peak_error)
            for r in self.records
        )
        return pickle.dumps(payload, protocol=4)


@dataclass(frozen=True)
class FleetIdentifyRecord:
    """One bus's outcome within a fleet identification scan.

    ``identified`` is the store's rank-1 answer for the capture this bus
    produced; ``correct`` compares it to the registered identity (the
    scan's ground truth).  ``shard``/``recovery`` are provenance only,
    excluded from the canonical bytes like their :class:`FleetRecord`
    counterparts.
    """

    index: int
    bus: str
    shard: int
    identified: Optional[str]
    score: float
    accepted: bool
    runner_up: Optional[str]
    separation: Optional[float]
    recovery: Optional[str] = None
    #: Registration metadata like :attr:`FleetRecord.protocol`; excluded
    #: from the canonical bytes.
    protocol: Optional[str] = None

    @property
    def correct(self) -> bool:
        """Whether the store's rank-1 answer names the capture's true bus."""
        return self.identified == self.bus


@dataclass(frozen=True)
class FleetIdentifyOutcome:
    """One fleet-wide identification pass, records in registration order."""

    records: Tuple[FleetIdentifyRecord, ...]
    shards: int
    backend: str
    store_digest: str
    method: str
    degraded: bool = False
    shard_health: Tuple[ShardHealth, ...] = ()

    def rank1_accuracy(self) -> float:
        """Fraction of buses the store identified correctly at rank 1."""
        if not self.records:
            return 0.0
        return sum(r.correct for r in self.records) / len(self.records)

    def misidentified(self) -> List[Tuple[str, FleetIdentifyRecord]]:
        """(bus name, record) pairs where rank-1 named the wrong bus."""
        return [(r.bus, r) for r in self.records if not r.correct]

    def canonical_bytes(self) -> bytes:
        """Deterministic serialisation of the shard-independent outcome.

        Mirrors :meth:`FleetScanOutcome.canonical_bytes`: the measurement
        and identification content is a pure function of (fleet, seed,
        store), so serial and K-shard passes produce identical bytes;
        ``shard``/``recovery``/health provenance is excluded.  Serialised
        as JSON rather than pickle: identify records repeat the bus name
        in two fields (``bus`` and ``identified``), and pickle's string
        memoisation would make the bytes depend on whether those are one
        interned object (in-parent serial run) or two equal ones (worker
        round trip) — value-based JSON sees only the content.
        """
        payload = [
            [r.index, r.bus, r.identified, r.score, r.accepted,
             r.runner_up, r.separation]
            for r in self.records
        ]
        return json.dumps(payload).encode()


# ----------------------------------------------------------------------
# the worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _BusWork:
    """Everything one bus visit needs, shipped to its shard.

    Two transports fill it differently.  The pickle reference backend
    populates the plain fields (``line``, ``fingerprint``,
    ``modifiers``) and the whole visit serializes by value.  The
    shared-memory transport nulls those and ships O(1)
    :class:`~repro.core.transport.ShmPayload` descriptors instead —
    the workers resolve them through the digest-keyed materialization
    cache — plus a reserved ``result_ref`` slot the worker fills with
    the visit's waveform samples so the big array never rides the
    return pickle either.  Seeds and indices always travel by value:
    they are the only per-visit content that changes between scans of
    an unchanged fleet — and even the seed travels as a compact state
    tuple (:func:`~repro.core.transport.pack_seed`) on the shm path,
    because a pickled ``SeedSequence`` would outweigh the descriptors.
    """

    index: int
    name: str
    #: ``SeedSequence`` on the pickle path; ``pack_seed`` tuple on shm.
    seed: object
    line: Optional[TransmissionLine] = None
    fingerprint: Optional[Fingerprint] = None
    modifiers: Tuple = ()
    line_ref: Optional[ShmPayload] = None
    fingerprint_ref: Optional[ShmPayload] = None
    modifiers_ref: Optional[ShmPayload] = None
    result_ref: Optional[ArrayRef] = None


@dataclass(frozen=True)
class _ShardTask:
    """One shard's worth of bus visits plus the shared policies."""

    shard: int
    mode: str  # "enroll" | "scan"
    work: Tuple[_BusWork, ...]
    config: ITDRConfig
    config_key: str
    authenticator: Authenticator
    tamper_detector: TamperDetector
    captures_per_check: int
    n_captures: int
    engine: str
    interference: object = None
    #: Which rung of the recovery ladder this execution is (0 = first
    #: try); provenance for the fault injector, never for measurement.
    attempt: int = 0
    #: Deterministic failure schedule (testing harness); None in
    #: production.
    fault_injector: Optional[FaultInjector] = None


@dataclass(frozen=True)
class _EnrollSlot:
    """A fingerprint coming home by reference: samples in the arena.

    Everything except the sample array (already canonical, already
    float64) rides here by value; the parent reconstructs the
    :class:`Fingerprint` with :func:`~repro.core.transport.read_array`.
    Reconstruction is bitwise because canonicalization is idempotent.
    """

    ref: ArrayRef
    name: str
    dt: float
    n_captures: int
    enrolled_temperature_c: float


@dataclass(frozen=True)
class _CaptureSlot:
    """An averaged identify capture coming home by reference."""

    ref: ArrayRef
    dt: float
    t0: float
    line_name: str
    n_triggers: int
    duration_s: float


def _work_seed(work: _BusWork) -> np.random.SeedSequence:
    if isinstance(work.seed, tuple):
        return unpack_seed(work.seed)
    return work.seed


def _work_line(work: _BusWork) -> TransmissionLine:
    if work.line_ref is not None:
        return materialize(work.line_ref)
    return work.line


def _work_fingerprint(work: _BusWork) -> Fingerprint:
    if work.fingerprint_ref is not None:
        return materialize(work.fingerprint_ref)
    return work.fingerprint


def _work_modifiers(work: _BusWork) -> Tuple:
    if work.modifiers_ref is not None:
        return materialize(work.modifiers_ref)
    return work.modifiers


def _fill_result(ref: ArrayRef, samples: np.ndarray) -> None:
    """Write one visit's samples into its reserved arena slot."""
    view = writable_array(ref)
    if view.shape != samples.shape:
        raise ValueError(
            f"reserved result slot {view.shape} does not match the "
            f"measured record {samples.shape}"
        )
    view[:] = samples
    del view


#: Per-process measurement state, keyed by the iTDR configuration digest.
#: A worker reuses one iTDR across every task it executes, so the
#: content-hash-keyed reflection cache (PR 1) stays warm: repeated scans
#: of the same fleet re-solve no physics.  The generator is rebound per
#: bus visit, so the persistent instance never couples stochastic streams
#: across buses.
_WORKER_ITDRS: Dict[str, ITDR] = {}


def _worker_itdr(config_key: str, config: ITDRConfig) -> ITDR:
    itdr = _WORKER_ITDRS.get(config_key)
    if itdr is None:
        itdr = ITDR(config)
        _WORKER_ITDRS[config_key] = itdr
    return itdr


def _run_shard(task: _ShardTask) -> tuple:
    """Execute one shard's visits; also the serial backend's inner loop.

    Runs identically inline (serial backend) and in a pool worker
    (process backend): per bus, rebind the iTDR generator to the bus's
    own stream, then enroll or monitor.  Nothing here may depend on
    shard identity except the provenance label on the records.

    Under the shared-memory transport each visit's payloads resolve
    through the materialization cache and the measured samples land in
    the visit's reserved arena slot instead of the return pickle; the
    measurement itself is transport-blind, so outcomes stay
    byte-identical across transports.

    Returns ``(items, cache_delta, kernel_delta, transport_delta)``: the
    ``(index, payload)`` pairs plus the solve-cache hit/miss/eviction,
    capture-kernel, and transport-materialization counters this shard
    contributed — provenance the parent folds into telemetry, never
    into outcomes.
    """
    if task.fault_injector is not None:
        task.fault_injector.apply(task.mode, task.shard, task.attempt)
    solve_stats_before = process_solve_cache().stats()
    transport_before = worker_transport_stats().snapshot()
    itdr = _worker_itdr(task.config_key, task.config)
    kernel_before = itdr.kernel_stats.snapshot()
    out = []
    for work in task.work:
        line = _work_line(work)
        modifiers = _work_modifiers(work)
        itdr.rng = np.random.default_rng(_work_seed(work))
        endpoint = DivotEndpoint(
            name=f"fleet/{work.name}",
            itdr=itdr,
            authenticator=task.authenticator,
            tamper_detector=task.tamper_detector,
            captures_per_check=task.captures_per_check,
        )
        if task.mode == "enroll":
            fingerprint = endpoint.calibrate(
                line, n_captures=task.n_captures, engine=task.engine
            )
            if work.result_ref is not None:
                _fill_result(work.result_ref, fingerprint.samples)
                out.append(
                    (
                        work.index,
                        _EnrollSlot(
                            ref=work.result_ref,
                            name=fingerprint.name,
                            dt=fingerprint.dt,
                            n_captures=fingerprint.n_captures,
                            enrolled_temperature_c=(
                                fingerprint.enrolled_temperature_c
                            ),
                        ),
                    )
                )
            else:
                out.append((work.index, fingerprint))
        elif task.mode == "identify":
            # The 1:N store lives in the parent (shipping 10^4+ templates
            # to every worker would dwarf the capture cost); a worker's
            # job is only the averaged measurement, on the same per-bus
            # stream discipline as every other mode.
            capture = itdr.capture_averaged(
                line,
                task.captures_per_check,
                modifiers=modifiers,
                interference=task.interference,
                engine=task.engine,
            )
            if work.result_ref is not None:
                _fill_result(work.result_ref, capture.waveform.samples)
                out.append(
                    (
                        work.index,
                        (
                            task.shard,
                            _CaptureSlot(
                                ref=work.result_ref,
                                dt=capture.waveform.dt,
                                t0=capture.waveform.t0,
                                line_name=capture.line_name,
                                n_triggers=capture.n_triggers,
                                duration_s=capture.duration_s,
                            ),
                        ),
                    )
                )
            else:
                out.append((work.index, (task.shard, capture)))
        else:
            # The fleet's reference for this bus is authoritative even if
            # it was enrolled (or swapped in) under another line's name.
            reference = _work_fingerprint(work)
            if reference.name != line.name:
                reference = replace(reference, name=line.name)
            endpoint.rom.store(reference)
            endpoint.state = EndpointState.MONITORING
            result = endpoint.monitor_capture(
                line,
                modifiers=modifiers,
                interference=task.interference,
                engine=task.engine,
            )
            out.append(
                (
                    work.index,
                    FleetRecord.from_result(
                        work.index, work.name, task.shard, result
                    ),
                )
            )
    solve_stats_after = process_solve_cache().stats()
    cache_delta = {
        key: solve_stats_after[key] - solve_stats_before[key]
        for key in SolveCache.COUNTER_KEYS
    }
    return (
        out,
        cache_delta,
        itdr.kernel_stats.delta(kernel_before),
        worker_transport_stats().delta(transport_before),
    )


def merge_shard_outputs(shard_outputs: Sequence[Sequence[tuple]]) -> list:
    """Flatten per-shard ``(index, payload)`` pairs back to fleet order.

    Shards may complete in any order and may have been partitioned any
    way; sorting on the registration index restores the one canonical
    order, so the merged stream is partition- and scheduling-independent
    (property-pinned in ``tests/property/test_fleet_sharding.py``).
    """
    merged = sorted(
        (item for out in shard_outputs for item in out), key=lambda p: p[0]
    )
    indices = [index for index, _ in merged]
    if len(set(indices)) != len(indices):
        raise ValueError("shard outputs overlap: a bus was visited twice")
    return [payload for _, payload in merged]


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
def available_workers(shards: int) -> int:
    """Worker processes a ``shards``-way pool should actually spawn.

    Clamped to the cores this process may run on: a 64-shard request on
    a 4-core box gets 4 workers (shard *tasks* still number 64 — they
    queue), instead of 64 processes thrashing the scheduler.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        cores = os.cpu_count() or 1
    return max(1, min(shards, cores))


class FleetScanExecutor:
    """Sharded round-robin DIVOT protection of a registered bus fleet.

    The fleet-scale sibling of
    :class:`~repro.core.manager.SharedITDRManager`: same lifecycle
    (register, enroll, scan), same unified-runtime surface (canonical
    events on the round-robin clock, workload-lifetime
    :class:`Telemetry`), but captures execute on a process pool
    partitioned by :func:`partition_fleet` — with a serial fallback
    backend producing byte-identical outcomes.

    Args:
        authenticator / tamper_detector: Shared decision policies
            (shipped to every shard).
        itdr_config: The datapath configuration every worker instantiates;
            the executor owns iTDR construction because per-bus seed
            discipline is its job.
        captures_per_check: Averaging depth per bus visit.
        shards: Number of fleet partitions (1 = no parallelism).
        backend: ``"auto"`` (process pool when ``shards > 1``),
            ``"serial"``, or ``"process"``.
        transport: How shard payloads cross the process boundary.
            ``"auto"`` picks ``"shm"`` (descriptors into parent-owned
            shared-memory arenas, zero-copy numpy payloads) whenever the
            resolved backend is a process pool and the platform supports
            POSIX shared memory, else the ``"pickle"`` reference path
            (everything by value).  Both may be forced explicitly;
            forcing ``"shm"`` on a platform without shared memory
            raises.  Outcomes are byte-identical across transports —
            the transport changes how bytes move, never which values
            arrive.
        seed: Root of the ``SeedSequence`` tree every stochastic draw in
            the fleet descends from.
        engine: Physics engine threaded through every capture.
        retry_policy: The recovery ladder for failed shard attempts
            (default :class:`~repro.core.faults.RetryPolicy`): bounded
            retries with backoff, pool rebuild on broken/hung pools,
            serial fallback as the terminal rung.
        fault_injector: Deterministic failure schedule for tests; None
            in production.
    """

    def __init__(
        self,
        authenticator: Authenticator,
        tamper_detector: TamperDetector,
        itdr_config: Optional[ITDRConfig] = None,
        captures_per_check: int = 1,
        shards: int = 1,
        backend: str = "auto",
        transport: str = "auto",
        seed: int = 0,
        engine: str = "born",
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if backend not in ("auto", "serial", "process"):
            raise ValueError("backend must be 'auto', 'serial' or 'process'")
        if transport not in ("auto", "pickle", "shm"):
            raise ValueError("transport must be 'auto', 'pickle' or 'shm'")
        if captures_per_check < 1:
            raise ValueError("captures_per_check must be >= 1")
        self.authenticator = authenticator
        self.tamper_detector = tamper_detector
        self.itdr_config = (
            itdr_config if itdr_config is not None else ITDRConfig()
        )
        self.captures_per_check = captures_per_check
        self.shards = shards
        self.backend = backend
        self.transport = transport
        self.seed = seed
        self.engine = engine
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.fault_injector = fault_injector
        #: Parent-side iTDR: cadence sizing and resource arithmetic only —
        #: it never measures, so its generator is never consumed.
        self.itdr = ITDR(self.itdr_config)
        self._config_key = hashlib.sha256(
            pickle.dumps(self.itdr_config, protocol=4)
        ).hexdigest()
        self._root = np.random.SeedSequence(seed)
        self._buses: Dict[str, TransmissionLine] = {}
        self._protocols: Dict[str, Optional[str]] = {}
        self._fingerprints: Dict[str, Fingerprint] = {}
        self._blocked: Dict[str, bool] = {}
        #: Workload-lifetime telemetry; every scan folds into it.  A
        #: shared sink may be passed in so several executors (e.g. one
        #: campaign arm each) aggregate into one snapshot surface.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._runtime = MonitorRuntime(telemetry=self.telemetry)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_rebuilds = 0
        #: One counter ledger shared by both arenas, folded into
        #: telemetry as deltas so repeated snapshots never double-count.
        self._transport_counters = {
            key: 0 for key in TRANSPORT_COUNTER_KEYS
        }
        self._transport_folded = dict(self._transport_counters)
        #: Content-addressed payloads that persist across scans (lines,
        #: fingerprints) live in the static arena; per-scan payloads
        #: (modifier stacks) and reserved result slots live in the
        #: scratch arena, rewound before every shm dispatch.
        self._static_arena: Optional[ShardArena] = None
        self._scratch_arena: Optional[ShardArena] = None
        self._payload_cache: Dict[str, ShmPayload] = {}

    # -- fleet membership ----------------------------------------------
    def register(
        self, line: TransmissionLine, protocol: Optional[str] = None
    ) -> None:
        """Put a bus under protection (enrolls lazily via :meth:`enroll`).

        ``protocol`` is an opaque protected-link label (a registry name
        such as ``"jtag"``); it rides on this bus's records and events so
        mixed-protocol fleets get per-protocol telemetry cells, and never
        influences measurement.
        """
        if self._fingerprints:
            raise RuntimeError(
                "cannot register new buses after enroll(); seed streams "
                "are spawned per registration order"
            )
        if line.name in self._buses:
            raise ValueError(f"bus {line.name!r} already registered")
        self._buses[line.name] = line
        self._protocols[line.name] = protocol
        self._blocked[line.name] = False

    @property
    def n_buses(self) -> int:
        """Registered bus count."""
        return len(self._buses)

    def bus_names(self) -> List[str]:
        """Registered bus names in registration (= scan) order."""
        return list(self._buses)

    def bus_protocols(self) -> Dict[str, Optional[str]]:
        """Protocol label per registered bus, in registration order."""
        return dict(self._protocols)

    def is_blocked(self, name: str) -> bool:
        """Whether a specific bus is currently refused service."""
        return self._blocked[name]

    @property
    def event_log(self):
        """Canonical per-bus events from every scan so far."""
        return self._runtime.log

    # -- backend plumbing ----------------------------------------------
    def resolved_backend(self) -> str:
        """The backend a scan will actually use."""
        if self.backend != "auto":
            return self.backend
        return "process" if self.shards > 1 else "serial"

    def resolved_transport(self) -> str:
        """The shard transport a scan will actually use.

        ``"auto"`` only picks shared memory when there is a process
        boundary to amortise it across: the serial backend resolves to
        the pickle reference path (which serializes nothing — tasks are
        plain in-process objects), as do platforms without usable
        shared memory.  An explicit ``"shm"`` is honoured on any
        backend (parent-side descriptor resolution works in-process)
        but raises where shared memory cannot exist at all, rather than
        silently degrading a caller who asked for the zero-copy path.
        """
        if self.transport == "pickle":
            return "pickle"
        if self.transport == "shm":
            if not shared_memory_available():
                raise RuntimeError(
                    "transport='shm' requested but POSIX shared memory "
                    "is unavailable on this platform"
                )
            return "shm"
        if self.resolved_backend() == "process" and shared_memory_available():
            return "shm"
        return "pickle"

    # -- shared-memory transport plumbing ------------------------------
    def _arenas(self) -> Tuple[ShardArena, ShardArena]:
        if self._static_arena is None:
            self._static_arena = ShardArena(
                counters=self._transport_counters
            )
            self._scratch_arena = ShardArena(
                counters=self._transport_counters
            )
        return self._static_arena, self._scratch_arena

    def _pack_static(self, obj) -> ShmPayload:
        """Pack a long-lived payload, reusing it while its content holds.

        Lines and fingerprints are content-addressed (profile hash,
        sample digest), so an unchanged object re-ships as the *same*
        payload object — O(1) on the parent, a guaranteed digest-cache
        hit in every worker that has seen it.  Any content change (a
        swapped module, a re-enrollment) produces a new marker and a
        fresh pack; the superseded payload's arena bytes are retired
        only at :meth:`close` (content churn is rare and bounded).
        """
        static, _ = self._arenas()
        marker = content_digest(obj)
        if marker is None:
            return pack_into(static, obj)
        payload = self._payload_cache.get(marker)
        if payload is None:
            payload = pack_into(static, obj, digest=marker)
            self._payload_cache[marker] = payload
        else:
            self._transport_counters["payloads_reused"] += 1
        return payload

    def _prepare_transport(
        self, mode: str, work: Sequence[_BusWork]
    ) -> List[_BusWork]:
        """Swap bulk payloads for arena descriptors when shm is on.

        The scratch arena is rewound here — at dispatch start, when no
        descriptor from the previous scan can still be live — so
        per-scan allocations recycle the same segments instead of
        growing without bound.  Result slots are reserved parent-side
        from the record length the configuration dictates, so the
        worker's only freedom is to fill them (a shape mismatch is an
        error, not a resize).
        """
        if self.resolved_transport() != "shm":
            return list(work)
        _, scratch = self._arenas()
        scratch.reset()
        prepared = []
        for item in work:
            result_ref = None
            if mode in ("enroll", "identify"):
                result_ref = scratch.reserve(
                    (self.itdr.record_length(item.line),), "float64"
                )
            prepared.append(
                replace(
                    item,
                    seed=pack_seed(item.seed),
                    line=None,
                    fingerprint=None,
                    modifiers=(),
                    line_ref=self._pack_static(item.line),
                    fingerprint_ref=(
                        None
                        if item.fingerprint is None
                        else self._pack_static(item.fingerprint)
                    ),
                    modifiers_ref=(
                        None
                        if not item.modifiers
                        else pack_into(scratch, item.modifiers)
                    ),
                    result_ref=result_ref,
                )
            )
        return prepared

    def _fold_transport(self) -> None:
        """Fold counter movement since the last fold into telemetry."""
        delta = {
            key: self._transport_counters[key] - self._transport_folded[key]
            for key in self._transport_counters
        }
        if any(delta.values()):
            self.telemetry.record_transport(delta)
        self._transport_folded = dict(self._transport_counters)

    def _release_arenas(self) -> None:
        """Unlink every transport segment (idempotent).

        Called from :meth:`close` and from the terminal rung of the
        recovery ladder — the two points where no retry, fallback, or
        parent-side read can still need the arena contents.  Arenas
        are rebuilt lazily, so a long-lived executor survives a
        terminal dispatch failure with nothing leaked.
        """
        for arena in (self._static_arena, self._scratch_arena):
            if arena is not None:
                arena.close()
        self._static_arena = None
        self._scratch_arena = None
        self._payload_cache = {}
        self._fold_transport()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=available_workers(self.shards)
            )
        return self._pool

    def _rebuild_pool(self) -> None:
        """Tear down a pool that can no longer be trusted.

        Called by the recovery engine after a ``BrokenProcessPool`` or a
        hung-worker timeout; the next :meth:`_ensure_pool` builds a
        fresh pool, so one worker death never bricks later scans.
        ``wait=False``: a wedged worker must not block recovery.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._pool_rebuilds += 1

    def close(self) -> None:
        """Shut the worker pool down and unlink the arenas (idempotent).

        Pending shard submissions are cancelled so a hung scan cannot
        block interpreter exit behind a queue of undone work; every
        shared-memory segment the transport created is unlinked, so a
        closed executor leaves nothing in ``/dev/shm``.
        """
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=True)
            self._pool = None
        self._release_arenas()

    def __enter__(self) -> "FleetScanExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- resilient dispatch --------------------------------------------
    def _serial_fallback_run(self, task: _ShardTask) -> list:
        """Terminal recovery rung: re-run one shard inline in the parent.

        The attempt number is ``max_retries + 1`` so a fault schedule
        aimed at pool attempts does not re-fire here (and so tests can
        target the fallback explicitly).
        """
        return _run_shard(
            replace(task, attempt=self.retry_policy.max_retries + 1)
        )

    def _dispatch_serial(self, tasks: Sequence[_ShardTask]):
        """Inline execution through the same recovery ladder.

        No pool means no hang detection — an inline shard cannot be
        interrupted — but crashes degrade to raised exceptions (see
        :meth:`FaultInjector.apply`) and retry/backoff/fallback apply
        unchanged.
        """

        def start(task, attempt):
            return replace(task, attempt=attempt)

        def collect(prepared, task, attempt):
            try:
                return _run_shard(prepared)
            except InjectedFault as exc:
                raise AttemptFailure(exc.kind) from exc
            except Exception as exc:
                raise AttemptFailure("error") from exc

        return run_with_recovery(
            tasks,
            self.retry_policy,
            start=start,
            collect=collect,
            serial_run=self._serial_fallback_run,
            on_terminal=self._release_arenas,
        )

    def _dispatch_process(self, tasks: Sequence[_ShardTask]):
        """Per-shard futures with workload-derived timeouts and recovery.

        Each round submits every pending shard before collecting any,
        so retries keep the pool's parallelism.  The round deadline
        scales with the queue depth (``waves``): on a machine with
        fewer workers than shards, a shard waiting behind others is not
        mistaken for a hang.
        """
        policy = self.retry_policy
        waves = math.ceil(
            max(1, len(tasks)) / available_workers(self.shards)
        )

        def start(task, attempt):
            try:
                future = self._ensure_pool().submit(
                    _run_shard, replace(task, attempt=attempt)
                )
            except BrokenProcessPool as exc:
                # The pool broke between submissions of this round; the
                # shard joins the retry set and the round-end rebuild
                # gives the next round a fresh pool.
                raise AttemptFailure(
                    "broken_pool", rebuild_pool=True
                ) from exc
            timeout = policy.shard_timeout_s(
                len(task.work), self.captures_per_check
            )
            deadline = (
                None if timeout is None
                else time.monotonic() + timeout * waves
            )
            return future, deadline

        def collect(handle, task, attempt):
            future, deadline = handle
            try:
                remaining = (
                    None if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                return future.result(timeout=remaining)
            except BrokenProcessPool as exc:
                raise AttemptFailure("broken_pool", rebuild_pool=True) from exc
            except TimeoutError as exc:
                # The worker may be wedged: the future cannot be trusted
                # to ever resolve, and neither can the pool around it.
                future.cancel()
                raise AttemptFailure("timeout", rebuild_pool=True) from exc
            except InjectedFault as exc:
                raise AttemptFailure(exc.kind) from exc
            except Exception as exc:
                raise AttemptFailure("error") from exc

        return run_with_recovery(
            tasks,
            self.retry_policy,
            start=start,
            collect=collect,
            serial_run=self._serial_fallback_run,
            on_rebuild=self._rebuild_pool,
            on_terminal=self._release_arenas,
        )

    def _dispatch(
        self, tasks: Sequence[_ShardTask]
    ) -> Tuple[list, List[ShardHealth]]:
        rebuilds_before = self._pool_rebuilds
        if self.resolved_backend() == "serial":
            outputs, healths = self._dispatch_serial(tasks)
        else:
            outputs, healths = self._dispatch_process(tasks)
        self._record_health(healths, self._pool_rebuilds - rebuilds_before)
        shard_items = []
        for items, cache_delta, kernel_delta, transport_delta in outputs:
            shard_items.append(items)
            self.telemetry.record_cache(cache_delta)
            self.telemetry.record_kernel(kernel_delta)
            self.telemetry.record_transport(transport_delta)
        self._fold_transport()
        return merge_shard_outputs(shard_items), healths

    def _record_health(
        self, healths: Sequence[ShardHealth], pool_rebuilds: int
    ) -> None:
        """Fold one dispatch's recovery accounting into telemetry."""
        fault_counts = {"timeout": 0, "broken_pool": 0, "crash": 0,
                        "error": 0}
        for health in healths:
            for kind in health.faults:
                fault_counts[kind] = fault_counts.get(kind, 0) + 1
        self.telemetry.record_health(
            {
                "dispatches": 1,
                "degraded_dispatches": int(
                    any(h.degraded for h in healths)
                ),
                "retries": sum(
                    max(0, h.attempts - 1) for h in healths
                ),
                "serial_fallbacks": sum(
                    1 for h in healths if h.outcome == SERIAL_FALLBACK
                ),
                "pool_rebuilds": pool_rebuilds,
                "timeouts": fault_counts["timeout"],
                "broken_pools": fault_counts["broken_pool"],
                "crashes": fault_counts["crash"],
                "errors": fault_counts["error"],
            }
        )
        for health in healths:
            self.telemetry.record_shard_wall(health.shard, health.wall_s)

    def _make_tasks(
        self,
        mode: str,
        work: Sequence[_BusWork],
        n_captures: int = 0,
        interference=None,
    ) -> List[_ShardTask]:
        work = self._prepare_transport(mode, work)
        return [
            _ShardTask(
                shard=shard,
                mode=mode,
                work=tuple(work[i] for i in chunk),
                config=self.itdr_config,
                config_key=self._config_key,
                authenticator=self.authenticator,
                tamper_detector=self.tamper_detector,
                captures_per_check=self.captures_per_check,
                n_captures=n_captures,
                engine=self.engine,
                interference=interference,
                fault_injector=self.fault_injector,
            )
            for shard, chunk in enumerate(
                partition_fleet(len(work), self.shards)
            )
            if chunk
        ]

    # -- lifecycle ------------------------------------------------------
    def _operation_streams(
        self,
        streams: Optional[Sequence[np.random.SeedSequence]],
    ) -> List[np.random.SeedSequence]:
        """Per-bus seed streams for one operation, default or supplied.

        The default spawns from the executor root in registration order
        (the PR-3 discipline: one fresh child per bus per operation).
        Callers may instead supply the streams themselves — one per
        registered bus, in registration order — making an operation's
        randomness a pure function of the caller's own coordinates
        (e.g. a campaign's ``(seed, arm, round)``) rather than of how
        many operations this executor ran before it.  Supplied streams
        flow through the identical per-bus rebinding in the workers, so
        the byte-identity guarantees are unchanged.
        """
        if streams is None:
            return spawn_bus_streams(self._root, self.n_buses)
        streams = list(streams)
        if len(streams) != self.n_buses:
            raise ValueError(
                f"need one stream per registered bus "
                f"({self.n_buses}), got {len(streams)}"
            )
        return streams

    def enroll(
        self,
        n_captures: int = 8,
        streams: Optional[Sequence[np.random.SeedSequence]] = None,
    ) -> Dict[str, Fingerprint]:
        """Enroll every registered bus, sharded like a scan.

        Each bus's enrollment draws come from its own spawned stream, so
        fingerprints are byte-identical across shard counts and backends.
        """
        if not self._buses:
            raise RuntimeError("no buses registered")
        if n_captures < 1:
            raise ValueError("n_captures must be >= 1")
        streams = self._operation_streams(streams)
        work = [
            _BusWork(index=i, name=name, line=line, seed=streams[i])
            for i, (name, line) in enumerate(self._buses.items())
        ]
        fingerprints, _ = self._dispatch(
            self._make_tasks("enroll", work, n_captures=n_captures)
        )
        for name, fingerprint in zip(self._buses, fingerprints):
            self._fingerprints[name] = self._resolve_fingerprint(
                fingerprint
            )
        return dict(self._fingerprints)

    @staticmethod
    def _resolve_fingerprint(payload) -> Fingerprint:
        """Rebuild a by-reference enrollment from its arena slot.

        The slot holds the worker's already-canonical float64 samples
        bit-for-bit, and canonicalization is idempotent at the bit
        level, so the reconstructed fingerprint is bitwise identical to
        the one the pickle transport would have shipped whole.
        """
        if not isinstance(payload, _EnrollSlot):
            return payload
        return Fingerprint(
            name=payload.name,
            samples=read_array(payload.ref),
            dt=payload.dt,
            n_captures=payload.n_captures,
            enrolled_temperature_c=payload.enrolled_temperature_c,
        )

    @staticmethod
    def _resolve_capture(payload) -> IIPCapture:
        """Rebuild a by-reference identify capture from its arena slot."""
        if not isinstance(payload, _CaptureSlot):
            return payload
        return IIPCapture(
            waveform=Waveform(
                read_array(payload.ref), payload.dt, payload.t0
            ),
            line_name=payload.line_name,
            n_triggers=payload.n_triggers,
            duration_s=payload.duration_s,
        )

    def build_store(
        self,
        sketch: Optional[SketchSpec] = None,
        policy: Optional[UpdatePolicy] = None,
        shortlist_size: int = 8,
    ) -> FingerprintStore:
        """The fleet's 1:N identification store, fed by its enrollment.

        Every enrolled fingerprint lands in a fresh content-addressed
        :class:`~repro.core.identify.FingerprintStore` in registration
        order (the store digest is insertion-order independent anyway).
        """
        if not self._fingerprints:
            raise RuntimeError("enroll() the fleet before building a store")
        store = FingerprintStore(
            sketch=sketch, policy=policy, shortlist_size=shortlist_size
        )
        store.enroll_many(list(self._fingerprints.values()))
        return store

    def identify_scan(
        self,
        store: Optional[FingerprintStore] = None,
        modifiers_by_bus: Optional[Dict[str, Sequence]] = None,
        interference=None,
        method: str = "sketch",
        streams: Optional[Sequence[np.random.SeedSequence]] = None,
    ) -> FleetIdentifyOutcome:
        """One fleet-wide 1:N identification pass.

        Shards measure one averaged capture per bus (same per-bus seed
        streams as :meth:`scan`, so the pass is byte-identical across
        backends and shard counts); the parent runs every capture through
        the store's indexed :meth:`~repro.core.identify.FingerprintStore.
        identify` and reports per-bus rank-1 hits as canonical runtime
        events — ``Telemetry.snapshot()``'s per-bus cells carry the
        fleet's identification accuracy (PROCEED = correct rank-1 and
        accepted, ALERT otherwise).

        ``store`` defaults to :meth:`build_store` over this fleet's own
        enrollment; pass a shared store to audit one fleet against a
        larger enrolled population.
        """
        if not self._buses:
            raise RuntimeError("no buses registered")
        if store is None:
            store = self.build_store()
        modifiers_by_bus = modifiers_by_bus or {}
        unknown = set(modifiers_by_bus) - set(self._buses)
        if unknown:
            raise KeyError(
                f"modifiers for unregistered buses: {sorted(unknown)}"
            )
        streams = self._operation_streams(streams)
        work = [
            _BusWork(
                index=i,
                name=name,
                line=line,
                seed=streams[i],
                modifiers=tuple(modifiers_by_bus.get(name, ())),
            )
            for i, (name, line) in enumerate(self._buses.items())
        ]
        payloads, healths = self._dispatch(
            self._make_tasks("identify", work, interference=interference)
        )
        recovery_by_shard = {
            h.shard: h.outcome for h in healths if h.degraded
        }
        records = []
        for (name, _), (index, (shard, capture)) in zip(
            self._buses.items(), enumerate(payloads)
        ):
            result = store.identify(
                self._resolve_capture(capture), method=method
            )
            records.append(
                FleetIdentifyRecord(
                    index=index,
                    bus=name,
                    shard=shard,
                    identified=result.bus,
                    score=result.score,
                    accepted=result.accepted,
                    runner_up=result.runner_up,
                    separation=result.separation,
                    recovery=recovery_by_shard.get(shard),
                    protocol=self._protocols[name],
                )
            )
        cadence = self._cadence()
        for (name, t), record in zip(
            cadence.visits(self.bus_names()), records
        ):
            self._runtime.record(
                MonitorEvent(
                    time_s=t,
                    side=name,
                    action=(
                        Action.PROCEED
                        if record.correct and record.accepted
                        else Action.ALERT
                    ),
                    score=record.score,
                    tampered=False,
                    location_m=None,
                    bus=name,
                    shard=record.shard,
                    recovery=record.recovery,
                    protocol=record.protocol,
                )
            )
        self._runtime.finish()
        return FleetIdentifyOutcome(
            records=tuple(records),
            shards=self.shards,
            backend=self.resolved_backend(),
            store_digest=store.digest(),
            method=method,
            degraded=bool(recovery_by_shard),
            shard_health=tuple(healths),
        )

    def scan(
        self,
        modifiers_by_bus: Optional[Dict[str, Sequence]] = None,
        interference=None,
        streams: Optional[Sequence[np.random.SeedSequence]] = None,
    ) -> FleetScanOutcome:
        """One full fleet pass: measure and judge every bus, sharded.

        Shards measure concurrently; the parent merges records back to
        registration order, stamps them with the round-robin cadence
        clock (the shared-datapath latency model is unchanged — shards
        buy *throughput*, the reported detection-latency arithmetic
        still describes the one-datapath deployment), and fans canonical
        events into the unified runtime.
        """
        if not self._buses:
            raise RuntimeError("no buses registered")
        if not self._fingerprints:
            raise RuntimeError("enroll() the fleet before scanning")
        modifiers_by_bus = modifiers_by_bus or {}
        unknown = set(modifiers_by_bus) - set(self._buses)
        if unknown:
            raise KeyError(f"modifiers for unregistered buses: {sorted(unknown)}")
        streams = self._operation_streams(streams)
        work = [
            _BusWork(
                index=i,
                name=name,
                line=line,
                seed=streams[i],
                fingerprint=self._fingerprints[name],
                modifiers=tuple(modifiers_by_bus.get(name, ())),
            )
            for i, (name, line) in enumerate(self._buses.items())
        ]
        records, healths = self._dispatch(
            self._make_tasks("scan", work, interference=interference)
        )
        recovery_by_shard = {
            h.shard: h.outcome for h in healths if h.degraded
        }
        records = [
            replace(
                record,
                recovery=recovery_by_shard.get(record.shard),
                protocol=self._protocols[record.bus],
            )
            for record in records
        ]
        cadence = self._cadence()
        for (name, t), record in zip(cadence.visits(self.bus_names()), records):
            self._runtime.record(
                MonitorEvent(
                    time_s=t,
                    side=name,
                    action=record.action,
                    score=record.score,
                    tampered=record.tampered,
                    location_m=record.location_m,
                    bus=name,
                    shard=record.shard,
                    recovery=record.recovery,
                    protocol=record.protocol,
                )
            )
            self._blocked[name] = record.action is Action.BLOCK
        self._runtime.finish()
        return FleetScanOutcome(
            records=tuple(records),
            shards=self.shards,
            backend=self.resolved_backend(),
            degraded=bool(recovery_by_shard),
            shard_health=tuple(healths),
        )

    # -- the sharing trade-off, quantified ------------------------------
    def _cadence(self) -> RoundRobinCadence:
        """The round-robin cadence, sized from the first registered bus."""
        if not self._buses:
            raise RuntimeError("no buses registered")
        if self._runtime.cadence is None:
            any_line = next(iter(self._buses.values()))
            self._runtime.cadence = RoundRobinCadence.from_budget(
                self.itdr, any_line, self.captures_per_check
            )
        return self._runtime.cadence

    def per_bus_check_time_s(self) -> float:
        """Datapath time one bus visit occupies."""
        return self._cadence().visit_s

    def scan_period_s(self) -> float:
        """Full round-robin time — the worst-case detection latency bound."""
        return self._cadence().worst_case_latency_s(self.n_buses)

    def resource_report(self) -> ResourceReport:
        """Hardware cost of this deployment (shared blocks counted once)."""
        model = ResourceModel(self.itdr_config)
        return model.report(n_itdrs=max(1, self.n_buses))
