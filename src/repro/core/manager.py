"""Chip-level DIVOT manager: one measurement datapath, many buses.

The paper's scaling argument (sections I and V): "Most of these logic
resources can be shared by different iTDRs, protecting multiple buses in a
parallel fashion" — over 90 % of the detector multiplexes.  The price the
paper does not quantify is *time*: a shared datapath scans buses round-
robin, so each bus is examined once per full scan and worst-case detection
latency grows with the bus count.  This manager implements the
multiplexed design on the unified monitoring runtime — a
:class:`~repro.core.runtime.RoundRobinCadence` owns the visit/latency
arithmetic, scans emit canonical per-bus events, and the workload's
telemetry reports the same metrics as the single-bus applications —
exposing both sides of the trade: the flat resource curve and the linear
latency curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..txline.line import TransmissionLine
from .auth import Authenticator
from .divot import DivotEndpoint, MonitorResult
from .fleet import FleetScanExecutor
from .itdr import ITDR
from .resources import ResourceModel, ResourceReport
from .runtime import EventLog, MonitorRuntime, RoundRobinCadence, Telemetry
from .tamper import TamperDetector

__all__ = ["ScanOutcome", "SharedITDRManager"]


@dataclass(frozen=True)
class ScanOutcome:
    """One full round-robin scan over every registered bus."""

    results: Tuple[Tuple[str, MonitorResult], ...]

    def alerts(self) -> List[Tuple[str, MonitorResult]]:
        """(bus name, result) pairs that did not PROCEED."""
        from .divot import Action

        return [
            (name, result)
            for name, result in self.results
            if result.action is not Action.PROCEED
        ]

    def all_clear(self) -> bool:
        """Whether every bus authenticated cleanly this scan."""
        return not self.alerts()


class SharedITDRManager:
    """Round-robin DIVOT protection of many buses with one datapath.

    Every registered bus gets its own :class:`DivotEndpoint` *decision
    state* (ROM entry, blocked flag) but all endpoints share the single
    ``itdr`` — the counters, FSM, PLL, and PDM generator exist once, as in
    the resource model's shared blocks.

    Args:
        itdr: The one measurement datapath.
        authenticator / tamper_detector: Shared decision policies.
        captures_per_check: Averaging depth per bus visit.
    """

    def __init__(
        self,
        itdr: ITDR,
        authenticator: Authenticator,
        tamper_detector: TamperDetector,
        captures_per_check: int = 1,
    ) -> None:
        self.itdr = itdr
        self.authenticator = authenticator
        self.tamper_detector = tamper_detector
        self.captures_per_check = captures_per_check
        self._buses: Dict[str, TransmissionLine] = {}
        self._protocols: Dict[str, Optional[str]] = {}
        self._endpoints: Dict[str, DivotEndpoint] = {}
        #: Workload-lifetime telemetry; every scan folds into it.
        self.telemetry = Telemetry()
        # The cadence needs a registered line to size a visit, so it is
        # attached lazily; the runtime (and its cross-scan event log)
        # lives for the manager's whole life.
        self._runtime = MonitorRuntime(telemetry=self.telemetry)

    # ------------------------------------------------------------------
    def register(
        self, line: TransmissionLine, protocol: Optional[str] = None
    ) -> None:
        """Put a bus under protection (calibrates lazily via calibrate_all).

        ``protocol`` is an opaque protected-link label (a registry name
        such as ``"jtag"``) carried on this bus's events so mixed fleets
        get per-protocol telemetry cells; it never affects measurement.
        """
        if line.name in self._buses:
            raise ValueError(f"bus {line.name!r} already registered")
        self._buses[line.name] = line
        self._protocols[line.name] = protocol
        self._endpoints[line.name] = DivotEndpoint(
            name=f"shared/{line.name}",
            itdr=self.itdr,
            authenticator=self.authenticator,
            tamper_detector=self.tamper_detector,
            captures_per_check=self.captures_per_check,
        )

    @property
    def n_buses(self) -> int:
        """Registered bus count."""
        return len(self._buses)

    def bus_names(self) -> List[str]:
        """Registered bus names in scan order."""
        return list(self._buses)

    def bus_protocols(self) -> Dict[str, Optional[str]]:
        """Protocol label per registered bus, in scan order."""
        return dict(self._protocols)

    @property
    def event_log(self) -> EventLog:
        """Canonical per-bus events from every scan so far."""
        return self._runtime.log

    def calibrate_all(self, n_captures: int = 8, engine: str = "born") -> None:
        """Enroll every registered bus (one batch-engine call per bus)."""
        if not self._buses:
            raise RuntimeError("no buses registered")
        for name, line in self._buses.items():
            self._endpoints[name].calibrate(
                line, n_captures=n_captures, engine=engine
            )

    def is_blocked(self, name: str) -> bool:
        """Whether a specific bus is currently refused service."""
        return self._endpoints[name].is_blocked

    # ------------------------------------------------------------------
    def _cadence(self) -> RoundRobinCadence:
        """The round-robin cadence, sized from the first registered bus."""
        if not self._buses:
            raise RuntimeError("no buses registered")
        if self._runtime.cadence is None:
            any_line = next(iter(self._buses.values()))
            self._runtime.cadence = RoundRobinCadence.from_budget(
                self.itdr, any_line, self.captures_per_check
            )
        return self._runtime.cadence

    def scan(
        self,
        modifiers_by_bus: Optional[Dict[str, Sequence]] = None,
        interference=None,
        engine: str = "born",
    ) -> ScanOutcome:
        """One round-robin pass: measure and judge every bus in turn.

        Each bus visit is one batch-engine call (the endpoint's averaged
        capture); ``interference`` couples into every visit — EMI near the
        chip reaches the shared datapath regardless of which bus it is
        multiplexed onto.  Visit completion times come from the cadence's
        running datapath clock, so events are timestamped consistently
        across scans.
        """
        cadence = self._cadence()
        modifiers_by_bus = modifiers_by_bus or {}
        results = []
        for name, t in cadence.visits(self.bus_names()):
            result = self._runtime.check(
                self._endpoints[name],
                t,
                [self._buses[name]],
                side=name,
                bus=name,
                protocol=self._protocols[name],
                modifiers=modifiers_by_bus.get(name, ()),
                interference=interference,
                engine=engine,
            )
            results.append((name, result))
        self._runtime.finish()
        return ScanOutcome(results=tuple(results))

    # ------------------------------------------------------------------
    def fleet(
        self,
        seed: int = 0,
        shards: int = 1,
        backend: str = "auto",
        transport: str = "auto",
        retry_policy=None,
    ) -> FleetScanExecutor:
        """A sharded :class:`FleetScanExecutor` over this manager's fleet.

        Carries the registered buses and shared decision policies across;
        the executor owns its own iTDRs (per worker) and seed streams, so
        its outcomes are a pure function of (fleet, seed, shard count)
        rather than of this manager's consumed generator state.
        ``retry_policy`` tunes the executor's worker-failure recovery
        ladder (default :class:`~repro.core.faults.RetryPolicy`).
        """
        executor = FleetScanExecutor(
            self.authenticator,
            self.tamper_detector,
            itdr_config=self.itdr.config,
            captures_per_check=self.captures_per_check,
            shards=shards,
            backend=backend,
            transport=transport,
            seed=seed,
            retry_policy=retry_policy,
        )
        for name, line in self._buses.items():
            executor.register(line, protocol=self._protocols[name])
        return executor

    # ------------------------------------------------------------------
    # the sharing trade-off, quantified
    # ------------------------------------------------------------------
    def per_bus_check_time_s(self) -> float:
        """Time the datapath spends on one bus visit."""
        return self._cadence().visit_s

    def scan_period_s(self) -> float:
        """Full round-robin time — the worst-case detection latency bound."""
        return self._cadence().worst_case_latency_s(self.n_buses)

    def resource_report(self) -> ResourceReport:
        """Hardware cost of this deployment (shared blocks counted once)."""
        model = ResourceModel(self.itdr.config)
        return model.report(n_itdrs=max(1, self.n_buses))
