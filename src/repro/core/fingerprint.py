"""Fingerprints and their storage (the calibration step of section III).

At manufacturing or installation time each endpoint measures the bus IIP and
stores it in a local EPROM.  The paper stresses that this ROM needs no
secrecy: an IIP is useless off its exact physical line — knowing the
fingerprint does not let an attacker reproduce the line that generates it.
We model the ROM as a plain dictionary with JSON import/export, secrecy-free
by design.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from .itdr import IIPCapture

__all__ = ["Fingerprint", "FingerprintROM"]


@dataclass(frozen=True)
class Fingerprint:
    """An enrolled IIP reference.

    Attributes:
        name: Identity of the enrolled line/channel.
        samples: Zero-mean, unit-norm reference waveform samples.
        dt: Time grid spacing of the samples, seconds.
        n_captures: How many captures were averaged at enrollment.
        enrolled_temperature_c: Ambient temperature at enrollment (matters
            for interpreting drift, per the Fig. 8 experiment).
    """

    name: str
    samples: np.ndarray
    dt: float
    n_captures: int = 1
    enrolled_temperature_c: float = 23.0

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=float)
        object.__setattr__(self, "samples", samples)
        if samples.ndim != 1 or len(samples) == 0:
            raise ValueError("fingerprint samples must be a non-empty 1-D array")

    @staticmethod
    def _canonicalize(samples: np.ndarray) -> np.ndarray:
        x = np.asarray(samples, dtype=float)
        x = x - np.mean(x)
        norm = np.linalg.norm(x)
        return x / norm if norm > 0 else x

    @classmethod
    def from_captures(
        cls,
        captures: Iterable[IIPCapture],
        name: Optional[str] = None,
        enrolled_temperature_c: float = 23.0,
    ) -> "Fingerprint":
        """Enroll from one or more captures (averaging suppresses APC noise)."""
        captures = list(captures)
        if not captures:
            raise ValueError("at least one capture is required to enroll")
        first = captures[0]
        if any(len(c.waveform) != len(first.waveform) for c in captures):
            raise ValueError("all enrollment captures must share a length")
        mean = np.mean([c.waveform.samples for c in captures], axis=0)
        return cls(
            name=name or first.line_name,
            samples=cls._canonicalize(mean),
            dt=first.waveform.dt,
            n_captures=len(captures),
            enrolled_temperature_c=enrolled_temperature_c,
        )

    @classmethod
    def from_stack(
        cls,
        stack: np.ndarray,
        dt: float,
        name: str,
        enrolled_temperature_c: float = 23.0,
    ) -> "Fingerprint":
        """Enroll from a ``(n_captures, N)`` batch-engine capture stack.

        The batched counterpart of :meth:`from_captures` — one row per
        constituent capture, as returned by ``ITDR.capture_stack``.
        """
        stack = np.asarray(stack, dtype=float)
        if stack.ndim != 2 or stack.shape[0] < 1 or stack.shape[1] < 1:
            raise ValueError("stack must be a non-empty (n_captures, N) array")
        return cls(
            name=name,
            samples=cls._canonicalize(stack.mean(axis=0)),
            dt=dt,
            n_captures=stack.shape[0],
            enrolled_temperature_c=enrolled_temperature_c,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "samples": self.samples.tolist(),
            "dt": self.dt,
            "n_captures": self.n_captures,
            "enrolled_temperature_c": self.enrolled_temperature_c,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Fingerprint":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            samples=np.asarray(data["samples"], dtype=float),
            dt=float(data["dt"]),
            n_captures=int(data.get("n_captures", 1)),
            enrolled_temperature_c=float(data.get("enrolled_temperature_c", 23.0)),
        )


class FingerprintROM:
    """The endpoint-local fingerprint store (the paper's EPROM).

    Deliberately *not* access-controlled: the architecture's security does
    not rest on fingerprint secrecy.
    """

    def __init__(self) -> None:
        self._store: Dict[str, Fingerprint] = {}

    def store(self, fingerprint: Fingerprint) -> None:
        """Write (or overwrite) the fingerprint under its name."""
        self._store[fingerprint.name] = fingerprint

    def load(self, name: str) -> Fingerprint:
        """Read a fingerprint; raises ``KeyError`` if never enrolled."""
        return self._store[name]

    def get(self, name: str) -> Optional[Fingerprint]:
        """Read a fingerprint or None if never enrolled."""
        return self._store.get(name)

    def names(self) -> List[str]:
        """All enrolled identities."""
        return sorted(self._store)

    def __contains__(self, name: str) -> bool:
        return name in self._store

    def __len__(self) -> int:
        return len(self._store)

    def export_json(self) -> str:
        """Serialise the whole ROM to a JSON string."""
        return json.dumps(
            {name: fp.to_dict() for name, fp in self._store.items()}
        )

    @classmethod
    def import_json(cls, payload: str) -> "FingerprintROM":
        """Rebuild a ROM from :meth:`export_json` output."""
        rom = cls()
        for _, data in json.loads(payload).items():
            rom.store(Fingerprint.from_dict(data))
        return rom
