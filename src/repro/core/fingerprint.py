"""Fingerprints and their storage (the calibration step of section III).

At manufacturing or installation time each endpoint measures the bus IIP and
stores it in a local EPROM.  The paper stresses that this ROM needs no
secrecy: an IIP is useless off its exact physical line — knowing the
fingerprint does not let an attacker reproduce the line that generates it.
We model the ROM as a plain dictionary with JSON import/export, secrecy-free
by design.

Integrity discipline (the substrate the content-addressed fleet store in
:mod:`repro.core.identify` builds on):

* a :class:`Fingerprint` owns its samples — the constructor copies and
  freezes the array, so no caller can mutate an enrolled reference after
  the fact;
* every constructed fingerprint is in canonical form (zero-mean,
  unit-norm), whatever gain or offset the input carried, so one physical
  line has exactly one sample representation and one :meth:`digest`;
* records from different time grids never compare: ``dt`` agreement is
  validated at enrollment and at scoring time;
* :meth:`FingerprintROM.export_json` is deterministic (sorted keys), so
  equal contents serialise to equal bytes and the export→import→export
  round trip is bitwise exact.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from .itdr import IIPCapture

__all__ = ["Fingerprint", "FingerprintROM", "dt_compatible"]

#: Relative tolerance on time-grid agreement.  Wide enough to absorb
#: float round-off in a dt that was serialised and re-parsed, far too
#: tight to let records from genuinely different ETS configurations
#: (phase steps differ at the percent scale or more) compare silently.
DT_RTOL = 1e-9


def dt_compatible(dt_a: float, dt_b: float) -> bool:
    """Whether two records share a time grid (within :data:`DT_RTOL`)."""
    return math.isclose(dt_a, dt_b, rel_tol=DT_RTOL, abs_tol=0.0)


@dataclass(frozen=True)
class Fingerprint:
    """An enrolled IIP reference.

    Attributes:
        name: Identity of the enrolled line/channel.
        samples: Zero-mean, unit-norm reference waveform samples.  The
            constructor canonicalises whatever it is given and freezes the
            result (read-only, privately copied), so the stored reference
            can neither carry stray gain nor be mutated through an alias.
        dt: Time grid spacing of the samples, seconds.
        n_captures: How many captures were averaged at enrollment.
        enrolled_temperature_c: Ambient temperature at enrollment (matters
            for interpreting drift, per the Fig. 8 experiment).
    """

    name: str
    samples: np.ndarray
    dt: float
    n_captures: int = 1
    enrolled_temperature_c: float = 23.0

    def __post_init__(self) -> None:
        samples = np.array(self.samples, dtype=float, copy=True)
        if samples.ndim != 1 or len(samples) == 0:
            raise ValueError("fingerprint samples must be a non-empty 1-D array")
        samples = self._canonicalize(samples)
        samples.setflags(write=False)
        object.__setattr__(self, "samples", samples)

    @staticmethod
    def _canonicalize(samples: np.ndarray) -> np.ndarray:
        """Zero-mean, unit-norm form — idempotent at the bit level.

        An already-canonical array (residuals at float round-off scale)
        is returned untouched: re-canonicalising would perturb the last
        few bits every pass, which would break content addressing and
        the bitwise export→import→export round trip.  Anything carrying
        real gain or offset (beyond ~1e-9) is normalised.
        """
        x = np.asarray(samples, dtype=float)
        scale = float(np.max(np.abs(x))) if len(x) else 0.0
        mean = float(np.mean(x))
        norm = float(np.linalg.norm(x))
        if abs(mean) <= 1e-9 * max(scale, 1e-300) and abs(norm - 1.0) <= 1e-9:
            return x
        x = x - mean
        norm = float(np.linalg.norm(x))
        return x / norm if norm > 0 else x

    def digest(self) -> str:
        """Content address of this reference: sha256 over (samples, dt).

        Canonicalisation makes this well defined — the same physical
        enrollment serialises to the same digest whatever gain/offset the
        raw record carried.  The name is deliberately excluded: a digest
        identifies wave *content*, the store maps names onto it.
        """
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(self.samples).tobytes())
        h.update(np.float64(self.dt).tobytes())
        return h.hexdigest()

    @classmethod
    def from_captures(
        cls,
        captures: Iterable[IIPCapture],
        name: Optional[str] = None,
        enrolled_temperature_c: float = 23.0,
    ) -> "Fingerprint":
        """Enroll from one or more captures (averaging suppresses APC noise).

        All constituent captures must share both a record length and a
        time grid: averaging samples from different ``dt`` grids would
        silently blend incompatible measurements.
        """
        captures = list(captures)
        if not captures:
            raise ValueError("at least one capture is required to enroll")
        first = captures[0]
        if any(len(c.waveform) != len(first.waveform) for c in captures):
            raise ValueError("all enrollment captures must share a length")
        if any(
            not dt_compatible(c.waveform.dt, first.waveform.dt)
            for c in captures
        ):
            raise ValueError(
                "all enrollment captures must share a time grid (dt)"
            )
        mean = np.mean([c.waveform.samples for c in captures], axis=0)
        return cls(
            name=name or first.line_name,
            samples=mean,
            dt=first.waveform.dt,
            n_captures=len(captures),
            enrolled_temperature_c=enrolled_temperature_c,
        )

    @classmethod
    def from_stack(
        cls,
        stack: np.ndarray,
        dt: float,
        name: str,
        enrolled_temperature_c: float = 23.0,
    ) -> "Fingerprint":
        """Enroll from a ``(n_captures, N)`` batch-engine capture stack.

        The batched counterpart of :meth:`from_captures` — one row per
        constituent capture, as returned by ``ITDR.capture_stack``.
        Canonicalisation happens in the constructor.
        """
        stack = np.asarray(stack, dtype=float)
        if stack.ndim != 2 or stack.shape[0] < 1 or stack.shape[1] < 1:
            raise ValueError("stack must be a non-empty (n_captures, N) array")
        return cls(
            name=name,
            samples=stack.mean(axis=0),
            dt=dt,
            n_captures=stack.shape[0],
            enrolled_temperature_c=enrolled_temperature_c,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "samples": self.samples.tolist(),
            "dt": self.dt,
            "n_captures": self.n_captures,
            "enrolled_temperature_c": self.enrolled_temperature_c,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Fingerprint":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            samples=np.asarray(data["samples"], dtype=float),
            dt=float(data["dt"]),
            n_captures=int(data.get("n_captures", 1)),
            enrolled_temperature_c=float(data.get("enrolled_temperature_c", 23.0)),
        )


class FingerprintROM:
    """The endpoint-local fingerprint store (the paper's EPROM).

    Deliberately *not* access-controlled: the architecture's security does
    not rest on fingerprint secrecy.
    """

    def __init__(self) -> None:
        self._store: Dict[str, Fingerprint] = {}

    def store(self, fingerprint: Fingerprint) -> None:
        """Write (or overwrite) the fingerprint under its name."""
        self._store[fingerprint.name] = fingerprint

    def load(self, name: str) -> Fingerprint:
        """Read a fingerprint; raises ``KeyError`` if never enrolled."""
        return self._store[name]

    def get(self, name: str) -> Optional[Fingerprint]:
        """Read a fingerprint or None if never enrolled."""
        return self._store.get(name)

    def names(self) -> List[str]:
        """All enrolled identities."""
        return sorted(self._store)

    def __contains__(self, name: str) -> bool:
        return name in self._store

    def __len__(self) -> int:
        return len(self._store)

    def export_json(self) -> str:
        """Serialise the whole ROM to a deterministic JSON string.

        Entries and keys are sorted, so two ROMs with equal contents
        export equal bytes regardless of insertion order, and
        ``export → import → export`` is bitwise stable (floats traverse
        JSON via shortest-repr, which round-trips float64 exactly;
        canonicalisation is bit-idempotent on already-canonical samples).
        """
        return json.dumps(
            {name: fp.to_dict() for name, fp in self._store.items()},
            sort_keys=True,
        )

    @classmethod
    def import_json(cls, payload: str) -> "FingerprintROM":
        """Rebuild a ROM from :meth:`export_json` output."""
        rom = cls()
        for _, data in json.loads(payload).items():
            rom.store(Fingerprint.from_dict(data))
        return rom
