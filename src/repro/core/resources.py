"""Structural hardware-resource model (section IV-A utilisation numbers).

The prototype's Vivado report: **71 registers and 124 LUTs** for the whole
DIVOT circuit on an xczu7ev, "where 80 % are used to generate counters", and
most of the logic is shareable across iTDR instances.  This module rebuilds
those numbers structurally: each RTL block's register count follows from the
configuration (counter widths are logarithms of the quantities they count),
and LUT counts follow standard increment/compare costings.  That lets the
overhead experiment reproduce the table *and* extrapolate it: what does
protecting 64 buses cost?
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from .itdr import ITDRConfig

__all__ = ["RTLBlock", "ResourceReport", "ResourceModel", "XCZU7EV"]


@dataclass(frozen=True)
class FPGAPart:
    """Available resources of a target FPGA part."""

    name: str
    luts: int
    registers: int


#: The ZCU104's Zynq Ultrascale+ part used by the prototype.
XCZU7EV = FPGAPart(name="xczu7ev-ffvc1156-2-e", luts=230_400, registers=460_800)


@dataclass(frozen=True)
class RTLBlock:
    """One synthesisable block of the DIVOT circuit.

    Attributes:
        name: Block identity.
        registers: Flip-flops the block infers.
        luts: Look-up tables the block infers.
        is_counter: Whether the block is counter logic (the paper singles
            out counters as ~80 % of utilisation).
        shared: Whether one instance serves every iTDR on the chip (PLL
            phase control and the PDM wave generator are chip-global; the
            per-bus cost is only the measurement datapath).
        memory_bits: Block-RAM bits the block consumes (fingerprint ROM,
            result FIFO).  Memories map to BRAM, not fabric, which is why
            the paper's 71-FF/124-LUT figure can exclude them; reported
            separately here for honesty.
    """

    name: str
    registers: int
    luts: int
    is_counter: bool = False
    shared: bool = False
    memory_bits: int = 0


def _counter_block(
    name: str, count_max: int, shared: bool = False, compare: bool = True
) -> RTLBlock:
    """A binary up-counter sized for ``count_max``.

    Registers: one per bit.  LUTs: one per bit for the increment chain plus
    (optionally) one per bit for the terminal-count comparison — the
    standard Xilinx costing for fabric counters.
    """
    width = max(1, math.ceil(math.log2(count_max + 1)))
    luts = width * (2 if compare else 1)
    return RTLBlock(
        name=name, registers=width, luts=luts, is_counter=True, shared=shared
    )


@dataclass(frozen=True)
class ResourceReport:
    """Totals plus breakdown for one DIVOT deployment."""

    blocks: List[RTLBlock]
    n_itdrs: int
    part: FPGAPart

    @property
    def registers(self) -> int:
        """Total flip-flops for ``n_itdrs`` instances with sharing."""
        return sum(
            b.registers * (1 if b.shared else self.n_itdrs) for b in self.blocks
        )

    @property
    def luts(self) -> int:
        """Total LUTs for ``n_itdrs`` instances with sharing."""
        return sum(
            b.luts * (1 if b.shared else self.n_itdrs) for b in self.blocks
        )

    @property
    def memory_bits(self) -> int:
        """Total BRAM bits (fingerprint storage scales per bus)."""
        return sum(
            b.memory_bits * (1 if b.shared else self.n_itdrs)
            for b in self.blocks
        )

    @property
    def counter_register_fraction(self) -> float:
        """Share of registers spent on counters (paper: ~80 %)."""
        total = self.registers
        if total == 0:
            return 0.0
        counters = sum(
            b.registers * (1 if b.shared else self.n_itdrs)
            for b in self.blocks
            if b.is_counter
        )
        return counters / total

    @property
    def shared_fraction(self) -> float:
        """Share of single-instance resources that are chip-global.

        The paper claims "over 90 % of the hardware in a DIVOT detector can
        be shared/multiplexed" — this is the quantity behind that claim.
        """
        total = sum(b.registers + b.luts for b in self.blocks)
        if total == 0:
            return 0.0
        shared = sum(b.registers + b.luts for b in self.blocks if b.shared)
        return shared / total

    @property
    def lut_utilization(self) -> float:
        """Fraction of the part's LUTs consumed."""
        return self.luts / self.part.luts

    def marginal_cost(self) -> tuple:
        """(registers, luts) added by each additional protected bus."""
        regs = sum(b.registers for b in self.blocks if not b.shared)
        luts = sum(b.luts for b in self.blocks if not b.shared)
        return regs, luts

    def rows(self) -> List[tuple]:
        """(name, registers, luts, counter?, shared?) rows for reporting."""
        return [
            (b.name, b.registers, b.luts, b.is_counter, b.shared)
            for b in self.blocks
        ]


class ResourceModel:
    """Derives the RTL block list from an iTDR configuration."""

    def __init__(self, config: ITDRConfig, n_record_points: int = 400) -> None:
        if n_record_points < 1:
            raise ValueError("n_record_points must be >= 1")
        self.config = config
        self.n_record_points = n_record_points

    def blocks(self) -> List[RTLBlock]:
        """The DIVOT circuit's synthesisable blocks for this configuration."""
        cfg = self.config
        phases = max(
            1,
            math.ceil(
                (1.0 / cfg.clock_frequency) / cfg.phase_step
            ),
        )
        q = cfg.pdm_vernier[1] if cfg.use_pdm else 1
        blocks = [
            # --- per-bus front end (all a new bus needs) ----------------
            RTLBlock("trigger-detect", registers=2, luts=3),
            RTLBlock("comparator-sync", registers=2, luts=2),
            # --- shared measurement datapath, time-multiplexed over the
            # --- protected buses (the paper's >90 % sharing claim) ------
            _counter_block("ones-counter", cfg.repetitions, shared=True),
            _counter_block("trial-counter", cfg.repetitions, shared=True),
            _counter_block(
                "point-counter", self.n_record_points, shared=True
            ),
            RTLBlock("result-fifo-if", registers=4, luts=6, shared=True),
            _counter_block("phase-step-counter", phases, shared=True),
            _counter_block("pdm-divider", max(q * 16, 2), shared=True),
            _counter_block(
                "calibration-timer", (1 << 20) - 1, shared=True, compare=False
            ),
            RTLBlock("control-fsm", registers=3, luts=13, shared=True),
            RTLBlock("pll-phase-ctl", registers=4, luts=8, shared=True),
            # --- memories (BRAM, outside the FF/LUT totals) -------------
            RTLBlock(
                "fingerprint-rom",
                registers=0,
                luts=0,
                # One 12-bit word per record point, per protected bus.
                memory_bits=12 * self.n_record_points,
            ),
            RTLBlock(
                "result-fifo",
                registers=0,
                luts=0,
                shared=True,
                memory_bits=16 * 13,  # 16-deep, 13-bit results
            ),
        ]
        return blocks

    def report(
        self, n_itdrs: int = 1, part: Optional[FPGAPart] = None
    ) -> ResourceReport:
        """Resource report for ``n_itdrs`` protected buses on ``part``."""
        if n_itdrs < 1:
            raise ValueError("n_itdrs must be >= 1")
        return ResourceReport(
            blocks=self.blocks(), n_itdrs=n_itdrs, part=part or XCZU7EV
        )
