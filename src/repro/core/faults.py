"""Fault-tolerant dispatch primitives for the sharded fleet executor.

One shared iTDR datapath protecting a whole fleet (paper sections I
and V) only earns its scaling story if the scanner degrades gracefully:
at production scale a worker process being OOM-killed, wedged, or slow
is an *expected* event, not an exception.  This module holds the pieces
the fleet layer composes into a recovery ladder:

* :class:`RetryPolicy` — bounded retries with exponential backoff, a
  workload-derived per-shard timeout, and a terminal serial-fallback
  switch;
* :func:`run_with_recovery` — the backend-agnostic retry engine: submit
  a round of shard attempts, classify failures
  (:class:`AttemptFailure`), rebuild broken pools, back off, retry, and
  finally re-execute exhausted shards serially in the parent;
* :class:`ShardHealth` — the per-shard recovery record surfaced on
  ``FleetScanOutcome.shard_health`` and folded into telemetry;
* :class:`FaultInjector` / :class:`FaultSpec` — a deterministic harness
  that makes workers crash, hang, run slow, or raise on a chosen
  (mode, shard, attempt), so every recovery path is testable without a
  real OOM.

Determinism under recovery is free by construction: per-bus
``SeedSequence`` streams are spawned in the parent before dispatch, so
a retried or serially re-run shard consumes exactly the streams the
first attempt would have — recovery can change *when and where* a shard
runs, never *what it measures*.

The module is intentionally stdlib-only (no numpy, no repro imports):
everything here must pickle cleanly across the process boundary and
stay importable from any layer.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "AttemptFailure",
    "FaultInjector",
    "FaultSpec",
    "FleetDispatchError",
    "InjectedFault",
    "RetryPolicy",
    "SERIAL_FALLBACK",
    "ShardHealth",
    "run_with_recovery",
]

#: Fault kinds the injector understands.
FAULT_KINDS = ("crash", "error", "hang", "slow")

#: ``ShardHealth.outcome`` label for a shard rescued by the parent.
SERIAL_FALLBACK = "serial_fallback"


# ----------------------------------------------------------------------
# exceptions
# ----------------------------------------------------------------------
class FleetDispatchError(RuntimeError):
    """A shard failed every rung of the recovery ladder.

    Raised only after bounded retries *and* (when enabled) the serial
    fallback have been exhausted — the dispatch layer's way of saying
    the failure is systematic, not transient.
    """


class InjectedFault(RuntimeError):
    """A deliberately injected worker failure (testing harness only).

    Carries the injected ``kind`` so recovery accounting can attribute
    the fault.  Both constructor arguments feed ``Exception.args`` so
    the instance survives the pickle round-trip home from a worker.
    """

    def __init__(self, kind: str, message: str = "") -> None:
        super().__init__(kind, message)
        self.kind = kind


class AttemptFailure(Exception):
    """One shard attempt failed, classified for the recovery ladder.

    Raised by a backend's ``collect`` callable (never crosses a process
    boundary).  ``kind`` is one of ``"broken_pool"``, ``"timeout"``,
    ``"crash"`` or ``"error"``; ``rebuild_pool`` tells the engine the
    worker pool can no longer be trusted and must be torn down before
    the next round.
    """

    def __init__(self, kind: str, rebuild_pool: bool = False) -> None:
        super().__init__(kind)
        self.kind = kind
        self.rebuild_pool = rebuild_pool


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How the dispatch layer escalates when a shard attempt fails.

    The ladder, per shard: up to ``max_retries`` re-submissions with
    exponential backoff (pool rebuilt first whenever the failure
    implicated the pool itself), then — if ``serial_fallback`` — one
    final in-parent serial re-execution, then :class:`FleetDispatchError`.

    The per-shard timeout is *workload-derived*: a shard visiting more
    buses at a deeper averaging depth earns proportionally more wall
    time, so one knob serves a 4-bus smoke test and a 10k-bus fleet.

    Attributes:
        max_retries: Re-submissions per shard after the first attempt.
        backoff_base_s: Backoff before the first retry.
        backoff_factor: Multiplier per subsequent retry.
        backoff_max_s: Backoff ceiling.
        shard_timeout_base_s: Fixed per-round timeout floor.  ``None``
            disables timeouts entirely (a hung worker then hangs the
            scan — only sensible under an external supervisor).
        shard_timeout_per_capture_s: Extra allowance per (bus visit x
            capture) a shard performs.
        serial_fallback: Whether an exhausted shard is re-run serially
            in the parent as the terminal rung.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    shard_timeout_base_s: Optional[float] = 60.0
    shard_timeout_per_capture_s: float = 0.25
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s < 0:
            raise ValueError("backoff_max_s must be >= 0")
        if (
            self.shard_timeout_base_s is not None
            and self.shard_timeout_base_s <= 0
        ):
            raise ValueError("shard_timeout_base_s must be positive or None")
        if self.shard_timeout_per_capture_s < 0:
            raise ValueError("shard_timeout_per_capture_s must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based retry index)."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )

    def shard_timeout_s(
        self, n_visits: int, captures_per_check: int
    ) -> Optional[float]:
        """Wall-time allowance for one shard attempt, or None (no limit)."""
        if self.shard_timeout_base_s is None:
            return None
        return (
            self.shard_timeout_base_s
            + self.shard_timeout_per_capture_s
            * max(0, n_visits)
            * max(1, captures_per_check)
        )


# ----------------------------------------------------------------------
# deterministic fault injection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what goes wrong, where, and on which attempt.

    Attributes:
        kind: ``"crash"`` (the worker process dies — a real
            ``os._exit``, so the pool genuinely breaks), ``"error"``
            (the shard raises :class:`InjectedFault`), ``"hang"`` /
            ``"slow"`` (the shard sleeps ``seconds`` before working —
            identical mechanics, named for intent: a hang is sized past
            the shard timeout, a slowdown inside it).
        shard: The shard index the fault targets.
        mode: The operation it fires in (``"scan"`` or ``"enroll"``).
        attempts: Attempt numbers it fires on (first attempt is 0; the
            serial fallback runs as attempt ``max_retries + 1``).
        seconds: Sleep duration for ``hang``/``slow``.
    """

    kind: str
    shard: int
    mode: str = "scan"
    attempts: Tuple[int, ...] = (0,)
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}")
        if self.shard < 0:
            raise ValueError("shard must be >= 0")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


@dataclass(frozen=True)
class FaultInjector:
    """A deterministic fault schedule shipped into shard workers.

    The schedule is a pure function of (mode, shard, attempt): no clock,
    no randomness, no generator consumption — injecting faults can delay
    or relocate a shard's execution but never perturb its seed streams,
    so recovered outcomes stay byte-identical to healthy ones.
    """

    specs: Tuple[FaultSpec, ...] = ()

    def spec_for(
        self, mode: str, shard: int, attempt: int
    ) -> Optional[FaultSpec]:
        """The first scheduled fault matching this execution, if any."""
        for spec in self.specs:
            if (
                spec.mode == mode
                and spec.shard == shard
                and attempt in spec.attempts
            ):
                return spec
        return None

    def apply(self, mode: str, shard: int, attempt: int) -> None:
        """Fire the scheduled fault, if any, at a shard's entry point.

        ``crash`` kills the process for real when running inside a pool
        worker (so the parent sees a genuine ``BrokenProcessPool``); in
        the parent process — serial backend or serial fallback — it
        degrades to raising :class:`InjectedFault` so the test harness
        never kills the interpreter under test.
        """
        spec = self.spec_for(mode, shard, attempt)
        if spec is None:
            return
        if spec.kind in ("hang", "slow"):
            time.sleep(spec.seconds)
            return
        if spec.kind == "crash":
            if multiprocessing.parent_process() is not None:
                os._exit(1)
            raise InjectedFault(
                "crash", f"injected crash: shard {shard} attempt {attempt}"
            )
        raise InjectedFault(
            "error", f"injected error: shard {shard} attempt {attempt}"
        )


# ----------------------------------------------------------------------
# per-shard recovery accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardHealth:
    """How one shard's work actually got done.

    Attributes:
        shard: The shard index.
        attempts: Executions performed (1 = first try succeeded; the
            serial fallback counts as one more attempt).
        outcome: ``"ok"`` (clean first attempt), ``"retried"`` (a
            re-submission succeeded) or ``"serial_fallback"`` (the
            parent re-ran the shard inline).
        wall_s: Total wall time across every attempt, fallback included.
        faults: Failure kinds observed, in order (``"broken_pool"``,
            ``"timeout"``, ``"crash"``, ``"error"``).
    """

    shard: int
    attempts: int
    outcome: str
    wall_s: float
    faults: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """Whether this shard needed any recovery at all."""
        return self.outcome != "ok"


@dataclass
class _HealthBuilder:
    shard: int
    attempts: int = 0
    wall_s: float = 0.0
    faults: List[str] = field(default_factory=list)
    fallback: bool = False

    def freeze(self) -> ShardHealth:
        if self.fallback:
            outcome = SERIAL_FALLBACK
        elif self.faults:
            outcome = "retried"
        else:
            outcome = "ok"
        return ShardHealth(
            shard=self.shard,
            attempts=self.attempts,
            outcome=outcome,
            wall_s=self.wall_s,
            faults=tuple(self.faults),
        )


# ----------------------------------------------------------------------
# the recovery engine
# ----------------------------------------------------------------------
def _run_terminal_hook(on_terminal: Optional[Callable[[], None]]) -> None:
    """Best-effort resource cleanup on the ladder's terminal rung."""
    if on_terminal is None:
        return
    try:
        on_terminal()
    except Exception:
        pass


def run_with_recovery(
    tasks: Sequence,
    policy: RetryPolicy,
    *,
    start: Callable,
    collect: Callable,
    serial_run: Optional[Callable] = None,
    on_rebuild: Optional[Callable[[], None]] = None,
    on_terminal: Optional[Callable[[], None]] = None,
    shard_of: Callable = lambda task: task.shard,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.perf_counter,
) -> Tuple[list, List[ShardHealth]]:
    """Execute every task through the retry/backoff/fallback ladder.

    Backend-agnostic: the caller supplies ``start(task, attempt) ->
    handle`` (submit one attempt; for a process pool this returns a
    future, for the serial backend a thunk) and ``collect(handle, task,
    attempt) -> output`` (block for the result, raising
    :class:`AttemptFailure` on any failure).  Rounds are submitted
    eagerly — every pending task is started before any is collected —
    so a parallel backend keeps its parallelism through retries.

    Per round: failures with ``rebuild_pool`` set trigger one
    ``on_rebuild()`` call before the next round; shards with retry
    budget left go back in the pending set; exhausted shards run
    ``serial_run(task)`` immediately (attempt number
    ``policy.max_retries + 1``) or raise :class:`FleetDispatchError`.
    ``on_terminal()``, when supplied, runs immediately before any
    :class:`FleetDispatchError` leaves the engine — the hook the fleet
    layer uses to release shared-memory transport arenas on the one
    rung where no re-execution will ever need their contents.  Cleanup
    failures are swallowed so they cannot mask the dispatch error.

    Returns ``(outputs, healths)`` both aligned to ``tasks`` order —
    the engine never reorders work, so the caller's merge arithmetic is
    untouched by recovery (property-pinned in
    ``tests/property/test_fault_schedules.py``).
    """
    outputs: list = [None] * len(tasks)
    builders = [_HealthBuilder(shard=shard_of(task)) for task in tasks]
    pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(tasks))]
    while pending:
        # ``start`` may itself fail classified (e.g. submitting to a pool
        # that broke a moment ago): carry the failure to the collect
        # phase so it walks the same ladder as a failed attempt.
        handles = []
        for i, attempt in pending:
            try:
                handle = start(tasks[i], attempt)
            except AttemptFailure as failure:
                handle = failure
            handles.append((i, attempt, handle))
        retry: List[Tuple[int, int]] = []
        exhausted: List[int] = []
        rebuild = False
        for i, attempt, handle in handles:
            started = clock()
            try:
                if isinstance(handle, AttemptFailure):
                    raise handle
                outputs[i] = collect(handle, tasks[i], attempt)
                builders[i].attempts += 1
                builders[i].wall_s += clock() - started
            except AttemptFailure as failure:
                builders[i].attempts += 1
                builders[i].wall_s += clock() - started
                builders[i].faults.append(failure.kind)
                rebuild = rebuild or failure.rebuild_pool
                if attempt < policy.max_retries:
                    retry.append((i, attempt + 1))
                else:
                    exhausted.append(i)
        if rebuild and on_rebuild is not None:
            on_rebuild()
        for i in exhausted:
            if serial_run is None or not policy.serial_fallback:
                _run_terminal_hook(on_terminal)
                raise FleetDispatchError(
                    f"shard {shard_of(tasks[i])} failed after "
                    f"{builders[i].attempts} attempt(s): "
                    f"{builders[i].faults}"
                )
            started = clock()
            try:
                outputs[i] = serial_run(tasks[i])
            except Exception as exc:
                builders[i].attempts += 1
                builders[i].wall_s += clock() - started
                _run_terminal_hook(on_terminal)
                raise FleetDispatchError(
                    f"shard {shard_of(tasks[i])} failed its serial "
                    f"fallback after faults {builders[i].faults}: {exc!r}"
                ) from exc
            builders[i].attempts += 1
            builders[i].wall_s += clock() - started
            builders[i].fallback = True
        if retry:
            sleep(policy.backoff_s(max(attempt for _, attempt in retry)))
        pending = retry
    return outputs, [builder.freeze() for builder in builders]
