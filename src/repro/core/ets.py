"""Equivalent time sampling (ETS) — paper section II-D.

Real-time sampling at the >10 GSa/s a TDR needs is expensive; ETS exploits
the LTI repeatability of the line instead.  A phase-stepping PLL shifts the
sampling clock by a small increment tau relative to the data clock after
each pass; after M passes with M*tau = Delta_T the interleaved records form
one waveform sampled at 1/tau — 11.16 ps (> 80 GSa/s equivalent) on the
Ultrascale+ prototype, i.e. ~0.84 mm spatial resolution at 15 cm/ns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..signals.waveform import Waveform

__all__ = ["PhaseSteppingPLL", "ETSSampler"]


@dataclass(frozen=True)
class PhaseSteppingPLL:
    """A PLL whose output phase can be stepped in fixed increments.

    Attributes:
        clock_frequency: Data/sampling clock, hertz (156.25 MHz prototype).
        phase_step: Smallest phase increment, seconds (11.16 ps on the
            Ultrascale+ MMCM).
    """

    clock_frequency: float = 156.25e6
    phase_step: float = 11.16e-12

    def __post_init__(self) -> None:
        if self.clock_frequency <= 0:
            raise ValueError("clock_frequency must be positive")
        if self.phase_step <= 0:
            raise ValueError("phase_step must be positive")

    @property
    def clock_period(self) -> float:
        """Delta_T: the real-time sample spacing, seconds."""
        return 1.0 / self.clock_frequency

    @property
    def steps_per_period(self) -> int:
        """M: phase positions per clock period (M * tau >= Delta_T)."""
        return int(np.ceil(self.clock_period / self.phase_step))

    @property
    def equivalent_sample_rate(self) -> float:
        """1/tau — the ETS rate, samples per second."""
        return 1.0 / self.phase_step

    def spatial_resolution(self, velocity: float) -> float:
        """Smallest resolvable distance on a line of the given velocity.

        Round-trip: a tau time step resolves ``velocity * tau / 2`` of
        one-way distance (~0.84 mm for 15 cm/ns and 11.16 ps).
        """
        if velocity <= 0:
            raise ValueError("velocity must be positive")
        return velocity * self.phase_step / 2.0


class ETSSampler:
    """Interleaves phase-stepped real-time records into a dense waveform.

    The simulator renders the line's "analog" response on a grid of spacing
    ``pll.phase_step``.  Real-time sampling at phase ``m`` observes every
    ``M``-th sample starting at offset ``m``; ETS runs ``m = 0 .. M-1`` and
    re-interleaves.  Both directions are provided so tests can verify the
    round trip is lossless — the formal content of the paper's Fig. 5.
    """

    def __init__(self, pll: PhaseSteppingPLL, n_phases: int = 0) -> None:
        self.pll = pll
        self.n_phases = n_phases or pll.steps_per_period
        if self.n_phases < 1:
            raise ValueError("n_phases must be >= 1")

    # ------------------------------------------------------------------
    def realtime_record(self, analog: Waveform, phase_index: int) -> Waveform:
        """What the real-time sampler sees at one PLL phase setting."""
        if not np.isclose(analog.dt, self.pll.phase_step, rtol=1e-6, atol=0.0):
            raise ValueError(
                "analog record must be rendered on the phase-step grid"
            )
        if not 0 <= phase_index < self.n_phases:
            raise ValueError(
                f"phase_index must be in [0, {self.n_phases}), got {phase_index}"
            )
        return analog.decimated(self.n_phases, offset=phase_index)

    def acquire(self, analog: Waveform) -> Sequence[Waveform]:
        """All M real-time records of one analog waveform."""
        return [
            self.realtime_record(analog, m) for m in range(self.n_phases)
        ]

    def interleave(self, records: Sequence[Waveform]) -> Waveform:
        """Rebuild the dense waveform from the M phase-stepped records.

        The records must actually be the M phase-stepped decimations of
        one dense waveform: record ``m`` of a ``total``-sample interleave
        holds ``ceil((total - m) / M)`` samples (what
        ``Waveform.decimated(M, offset=m)`` produces) and every record
        shares one real-time sample spacing.  Anything else raises —
        historically, mismatched record lengths were written through
        truncating strided slices into an uninitialised buffer, silently
        returning garbage samples in the gaps.
        """
        if len(records) != self.n_phases:
            raise ValueError(
                f"expected {self.n_phases} records, got {len(records)}"
            )
        m_phases = self.n_phases
        total = sum(len(r) for r in records)
        dt0 = records[0].dt
        for m, record in enumerate(records):
            if not np.isclose(record.dt, dt0, rtol=1e-6, atol=0.0):
                raise ValueError(
                    f"record {m} has sample spacing {record.dt!r} but "
                    f"record 0 has {dt0!r}; interleaved records must share "
                    "one real-time grid"
                )
            expected = (total - m + m_phases - 1) // m_phases
            if len(record) != expected:
                raise ValueError(
                    f"record {m} has {len(record)} samples, but phase {m} "
                    f"of a {total}-sample, {m_phases}-phase interleave "
                    f"must contribute {expected}; these records are not "
                    "the phase-stepped decimations of one waveform"
                )
        out = np.empty(total)
        for m, record in enumerate(records):
            out[m::m_phases] = record.samples
        return Waveform(out, self.pll.phase_step, records[0].t0)

    # ------------------------------------------------------------------
    def measurement_passes(self, n_points: int) -> int:
        """Number of waveform repetitions needed to cover ``n_points``.

        Each pass (one PLL phase) contributes ``ceil(n_points / M)`` points;
        covering all points needs ``min(M, n_points)`` passes.
        """
        if n_points < 1:
            raise ValueError("n_points must be >= 1")
        return min(self.n_phases, n_points)
