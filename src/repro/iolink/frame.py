"""Link-layer framing with CRC-16 integrity.

The protected serial link carries variable-length frames: a sequence
number, a payload, and a CRC-16/CCITT trailer.  DIVOT sits *below* this
layer — it authenticates the physical conductor — but the frame layer is
what demonstrates the end-to-end story: data still flows, CRCs still pass,
while the iTDR measures the line from the same bit stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["crc16_ccitt", "Frame", "FrameError"]


def crc16_ccitt(data: Sequence[int], initial: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE over a byte sequence (poly 0x1021)."""
    crc = initial
    for byte in data:
        if not 0 <= byte <= 255:
            raise ValueError(f"byte out of range: {byte}")
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


class FrameError(ValueError):
    """Raised when a byte stream does not parse into a valid frame."""


@dataclass(frozen=True)
class Frame:
    """One link-layer frame.

    Wire format: ``[seq, len, payload..., crc_hi, crc_lo]`` where the CRC
    covers seq, len, and payload.
    """

    sequence: int
    payload: Tuple[int, ...]

    MAX_PAYLOAD = 255

    def __post_init__(self) -> None:
        if not 0 <= self.sequence <= 255:
            raise ValueError("sequence must fit one byte")
        if len(self.payload) > self.MAX_PAYLOAD:
            raise ValueError("payload too long")
        if any(not 0 <= b <= 255 for b in self.payload):
            raise ValueError("payload bytes out of range")
        object.__setattr__(self, "payload", tuple(int(b) for b in self.payload))

    def to_bytes(self) -> List[int]:
        """Serialise to the wire byte sequence."""
        body = [self.sequence, len(self.payload), *self.payload]
        crc = crc16_ccitt(body)
        return body + [(crc >> 8) & 0xFF, crc & 0xFF]

    @property
    def wire_length(self) -> int:
        """Total bytes on the wire."""
        return 4 + len(self.payload)

    @classmethod
    def from_bytes(cls, data: Sequence[int]) -> "Frame":
        """Parse and CRC-check one frame from the start of ``data``."""
        data = list(data)
        if len(data) < 4:
            raise FrameError("truncated frame header")
        length = data[1]
        total = 4 + length
        if len(data) < total:
            raise FrameError("truncated frame payload")
        body = data[: 2 + length]
        crc_rx = (data[2 + length] << 8) | data[3 + length]
        if crc16_ccitt(body) != crc_rx:
            raise FrameError("CRC mismatch")
        return cls(sequence=data[0], payload=tuple(data[2 : 2 + length]))

    @staticmethod
    def parse_stream(data: Sequence[int]) -> List["Frame"]:
        """Parse back-to-back frames until the stream is exhausted."""
        frames: List[Frame] = []
        data = list(data)
        pos = 0
        while pos < len(data):
            frame = Frame.from_bytes(data[pos:])
            frames.append(frame)
            pos += frame.wire_length
        return frames
