"""DIVOT on a serial I/O link (the paper's future-work extension).

A genuine 8b/10b-coded serial lane with link-layer framing and CRC, plus
two-way DIVOT endpoints whose monitoring is fed by the traffic's own
trigger supply — the full section II-E runtime-measurement story on a
clockless lane.
"""

from .frame import Frame, FrameError, crc16_ccitt
from .link import LINE_CODINGS, SerialLink, TransmitRecord
from .protected import LinkRunResult, ProtectedSerialLink
from .protocol import IOLINK_SPEC, iolink_traffic


def __getattr__(name: str):
    # PEP 562: forward the deprecated alias lazily so merely importing
    # the package stays silent — only actual use warns.
    if name == "LinkEvent":
        from . import protected

        return protected.LinkEvent
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Frame",
    "FrameError",
    "crc16_ccitt",
    "SerialLink",
    "LINE_CODINGS",
    "TransmitRecord",
    "ProtectedSerialLink",
    "LinkEvent",
    "LinkRunResult",
    "IOLINK_SPEC",
    "iolink_traffic",
]
