"""DIVOT on a serial I/O link (the paper's future-work extension).

A genuine 8b/10b-coded serial lane with link-layer framing and CRC, plus
two-way DIVOT endpoints whose monitoring is fed by the traffic's own
trigger supply — the full section II-E runtime-measurement story on a
clockless lane.
"""

from .frame import Frame, FrameError, crc16_ccitt
from .link import LINE_CODINGS, SerialLink, TransmitRecord
from .protected import LinkEvent, LinkRunResult, ProtectedSerialLink

__all__ = [
    "Frame",
    "FrameError",
    "crc16_ccitt",
    "SerialLink",
    "LINE_CODINGS",
    "TransmitRecord",
    "ProtectedSerialLink",
    "LinkEvent",
    "LinkRunResult",
]
