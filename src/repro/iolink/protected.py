"""A DIVOT-protected serial link: transport plus physical authentication.

Combines the serial lane with a DIVOT endpoint at each end.  Unlike the
memory bus (whose clock lane triggers every cycle), the serial lane's
monitor is *traffic-fed*: each monitoring decision costs a trigger budget
the passing frames must supply.  ``send`` therefore interleaves transport
and monitoring through the unified runtime's
:class:`~repro.core.runtime.TriggerBudgetCadence`, reporting delivered
frames, alerts, and the monitoring cadence the traffic actually
sustained — in the same canonical event/telemetry vocabulary as the
memory bus and the shared manager.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..attacks.base import AttackTimeline
from ..core.auth import Authenticator
from ..core.itdr import ITDR
from ..core.runtime import EventLog, MonitorEvent, MonitorRuntime
from ..core.tamper import TamperDetector
from ..protocols.link import ProtectedLink
from .frame import Frame, FrameError
from .link import SerialLink
from .protocol import IOLINK_SPEC

__all__ = ["LinkEvent", "LinkRunResult", "ProtectedSerialLink"]


def __getattr__(name: str):
    # PEP 562: the compatibility alias survives, but loudly.
    if name == "LinkEvent":
        warnings.warn(
            "LinkEvent is a deprecated alias; use "
            "repro.core.runtime.MonitorEvent",
            DeprecationWarning,
            stacklevel=2,
        )
        return MonitorEvent
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class LinkRunResult:
    """Everything a protected link session produced.

    Events live in a canonical :class:`~repro.core.runtime.EventLog`;
    the alert/latency queries delegate to it.  ``checks_run`` and
    ``triggers_consumed`` come straight from the cadence's accounting,
    so a check is never reported as free.
    """

    delivered: List[Frame] = field(default_factory=list)
    crc_errors: int = 0
    log: EventLog = field(default_factory=EventLog)
    duration_s: float = 0.0
    checks_run: int = 0
    triggers_consumed: int = 0

    @property
    def events(self) -> List[MonitorEvent]:
        """The raw monitoring events in time order."""
        return self.log.events

    def alerts(self) -> List[MonitorEvent]:
        """Non-PROCEED events in time order."""
        return self.log.alerts()

    def first_alert_time(self) -> Optional[float]:
        """Time of the first BLOCK/ALERT, or None for a clean session."""
        return self.log.first_alert_time()

    def detection_latency(self, onset_s: float) -> Optional[float]:
        """Time from attack onset to the first alert at/after it."""
        return self.log.detection_latency(onset_s)


class ProtectedSerialLink:
    """A serial lane with two-way DIVOT monitoring riding on its traffic.

    Args:
        link: The transport lane.
        tx_itdr / rx_itdr: iTDRs at the two ends.
        authenticator / tamper_detector: shared decision policies.
        captures_per_check: averaging depth per monitoring decision.
    """

    def __init__(
        self,
        link: SerialLink,
        tx_itdr: ITDR,
        rx_itdr: ITDR,
        authenticator: Authenticator,
        tamper_detector: TamperDetector,
        captures_per_check: int = 16,
    ) -> None:
        self.link = link
        # Assembly — endpoints, telemetry, cadence arithmetic — is the
        # registered serial-link protocol.
        self.protected_link = ProtectedLink(
            IOLINK_SPEC,
            link.line,
            (tx_itdr, rx_itdr),
            authenticator,
            tamper_detector,
            captures_per_check=captures_per_check,
        )
        self.tx_endpoint = self.protected_link.endpoint("tx")
        self.rx_endpoint = self.protected_link.endpoint("rx")
        #: Workload-lifetime telemetry shared by every session.
        self.telemetry = self.protected_link.telemetry
        # One monitoring check costs this many triggers — arithmetic owned
        # by the traffic-fed cadence.
        self.triggers_per_check = self.protected_link.check_cost_triggers

    # ------------------------------------------------------------------
    def calibrate(self, n_captures: int = 8) -> None:
        """Pair both endpoints with the lane."""
        self.tx_endpoint.calibrate(self.link.line, n_captures=n_captures)
        self.rx_endpoint.calibrate(self.link.line, n_captures=n_captures)

    @property
    def check_period_s(self) -> float:
        """Monitoring cadence the link's own traffic sustains at 100 % duty."""
        return self.link.time_for_triggers(self.triggers_per_check)

    # ------------------------------------------------------------------
    def idle_fill_record(self, n_symbols: int = 64):
        """Idle symbols a quiet link transmits to keep the monitor fed.

        Real links never go silent — they send idle/skip symbols to hold
        bit lock.  For DIVOT this is load-bearing: idle traffic carries
        edges, and edges are probes.  The idle pattern here is the comma-
        free alternating byte 0xB5, whose coded form is rich in (1,0)
        transitions.
        """
        if n_symbols < 1:
            raise ValueError("n_symbols must be >= 1")
        bits = self.link.encode_idle(n_symbols)
        n_triggers = self.link.trigger.count_triggers(bits)
        duration = len(bits) / self.link.bit_rate
        return n_triggers, duration

    def send(
        self,
        frames: Sequence[Frame],
        timeline: Optional[AttackTimeline] = None,
        idle_fill: bool = False,
        max_idle_s: float = 5e-3,
    ) -> LinkRunResult:
        """Transmit frames with concurrent trigger-fed monitoring.

        Frames transmit back to back; whenever the cumulative trigger
        supply crosses a check budget, both endpoints evaluate the lane
        under whatever the timeline has active.  A BLOCKed receiving end
        drops traffic (frames sent while blocked are not delivered) — the
        link-level analogue of the memory gate.

        ``idle_fill=True`` appends idle symbols after the payload until at
        least one full monitoring check has run (bounded by ``max_idle_s``)
        — the standard cure for monitor starvation on quiet links.
        """
        runtime = self.protected_link.new_runtime()
        cadence = runtime.cadence
        result = LinkRunResult(log=runtime.log)
        t = 0.0
        for frame in frames:
            record = self.link.transmit([frame])
            t += record.duration_s
            cadence.feed(record.n_triggers)
            for due in cadence.due(t):
                self._check(runtime, due, timeline)
            if self.rx_endpoint.is_blocked:
                continue  # receiver refuses traffic from an unverified lane
            try:
                decoded = self.link.decode_frames(record.bits)
                result.delivered.extend(decoded)
            except (FrameError, ValueError):
                result.crc_errors += 1
        if idle_fill and cadence.checks_run == 0:
            idle_triggers, idle_duration = self.idle_fill_record()
            t = cadence.idle_fill(t, idle_triggers, idle_duration, max_idle_s)
            for due in cadence.due(t):
                self._check(runtime, due, timeline)
        result.duration_s = t
        if timeline is not None and not result.alerts():
            # Final check so short bursts still observe late attacks —
            # routed through the cadence, so it consumes the banked
            # trigger pool and lands at the session-end timestamp.
            self._check(runtime, cadence.force(t), timeline)
        runtime.finish()
        result.checks_run = cadence.checks_run
        result.triggers_consumed = cadence.triggers_consumed
        return result

    def _check(
        self,
        runtime: MonitorRuntime,
        t: float,
        timeline: Optional[AttackTimeline],
    ) -> None:
        """One two-way check: both ends evaluate the lane at time ``t``."""
        self.protected_link.check(runtime, t, timeline)
