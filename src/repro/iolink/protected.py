"""A DIVOT-protected serial link: transport plus physical authentication.

Combines the serial lane with a DIVOT endpoint at each end.  Unlike the
memory bus (whose clock lane triggers every cycle), the serial lane's
monitor is *traffic-fed*: each monitoring decision costs a trigger budget
the passing frames must supply.  ``send`` therefore interleaves transport
and monitoring, reporting delivered frames, alerts, and the monitoring
cadence the traffic actually sustained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


from ..attacks.base import AttackTimeline
from ..core.auth import Authenticator
from ..core.divot import Action, DivotEndpoint
from ..core.itdr import ITDR
from ..core.tamper import TamperDetector
from .frame import Frame, FrameError
from .link import SerialLink

__all__ = ["LinkEvent", "LinkRunResult", "ProtectedSerialLink"]


@dataclass(frozen=True)
class LinkEvent:
    """One monitoring outcome during a link session."""

    time_s: float
    side: str
    action: Action
    score: float
    tampered: bool
    location_m: Optional[float]


@dataclass
class LinkRunResult:
    """Everything a protected link session produced."""

    delivered: List[Frame] = field(default_factory=list)
    crc_errors: int = 0
    events: List[LinkEvent] = field(default_factory=list)
    duration_s: float = 0.0
    checks_run: int = 0
    triggers_consumed: int = 0

    def alerts(self) -> List[LinkEvent]:
        """Non-PROCEED events in time order."""
        return [e for e in self.events if e.action is not Action.PROCEED]

    def detection_latency(self, onset_s: float) -> Optional[float]:
        """Time from attack onset to the first alert at/after it."""
        for event in self.alerts():
            if event.time_s >= onset_s:
                return event.time_s - onset_s
        return None


class ProtectedSerialLink:
    """A serial lane with two-way DIVOT monitoring riding on its traffic.

    Args:
        link: The transport lane.
        tx_itdr / rx_itdr: iTDRs at the two ends.
        authenticator / tamper_detector: shared decision policies.
        captures_per_check: averaging depth per monitoring decision.
    """

    def __init__(
        self,
        link: SerialLink,
        tx_itdr: ITDR,
        rx_itdr: ITDR,
        authenticator: Authenticator,
        tamper_detector: TamperDetector,
        captures_per_check: int = 16,
    ) -> None:
        self.link = link
        self.tx_endpoint = DivotEndpoint(
            "serdes-tx", tx_itdr, authenticator, tamper_detector,
            captures_per_check=captures_per_check,
        )
        self.rx_endpoint = DivotEndpoint(
            "serdes-rx", rx_itdr, authenticator, tamper_detector,
            captures_per_check=captures_per_check,
        )
        # One monitoring check costs this many triggers.
        budget = tx_itdr.budget(tx_itdr.record_length(link.line))
        self.triggers_per_check = budget.n_triggers * captures_per_check

    # ------------------------------------------------------------------
    def calibrate(self, n_captures: int = 8) -> None:
        """Pair both endpoints with the lane."""
        self.tx_endpoint.calibrate(self.link.line, n_captures=n_captures)
        self.rx_endpoint.calibrate(self.link.line, n_captures=n_captures)

    @property
    def check_period_s(self) -> float:
        """Monitoring cadence the link's own traffic sustains at 100 % duty."""
        return self.link.time_for_triggers(self.triggers_per_check)

    # ------------------------------------------------------------------
    def idle_fill_record(self, n_symbols: int = 64):
        """Idle symbols a quiet link transmits to keep the monitor fed.

        Real links never go silent — they send idle/skip symbols to hold
        bit lock.  For DIVOT this is load-bearing: idle traffic carries
        edges, and edges are probes.  The idle pattern here is the comma-
        free alternating byte 0xB5, whose coded form is rich in (1,0)
        transitions.
        """
        if n_symbols < 1:
            raise ValueError("n_symbols must be >= 1")
        bits = self.link.encode_idle(n_symbols)
        n_triggers = self.link.trigger.count_triggers(bits)
        duration = len(bits) / self.link.bit_rate
        return n_triggers, duration

    def send(
        self,
        frames: Sequence[Frame],
        timeline: Optional[AttackTimeline] = None,
        idle_fill: bool = False,
        max_idle_s: float = 5e-3,
    ) -> LinkRunResult:
        """Transmit frames with concurrent trigger-fed monitoring.

        Frames transmit back to back; whenever the cumulative trigger
        supply crosses a check budget, both endpoints evaluate the lane
        under whatever the timeline has active.  A BLOCKed receiving end
        drops traffic (frames sent while blocked are not delivered) — the
        link-level analogue of the memory gate.

        ``idle_fill=True`` appends idle symbols after the payload until at
        least one full monitoring check has run (bounded by ``max_idle_s``)
        — the standard cure for monitor starvation on quiet links.
        """
        result = LinkRunResult()
        t = 0.0
        trigger_pool = 0
        for frame in frames:
            record = self.link.transmit([frame])
            t += record.duration_s
            trigger_pool += record.n_triggers
            while trigger_pool >= self.triggers_per_check:
                trigger_pool -= self.triggers_per_check
                result.triggers_consumed += self.triggers_per_check
                result.checks_run += 1
                result.events.extend(self._check(t, timeline))
            if self.rx_endpoint.is_blocked:
                continue  # receiver refuses traffic from an unverified lane
            try:
                decoded = self.link.decode_frames(record.bits)
                result.delivered.extend(decoded)
            except (FrameError, ValueError):
                result.crc_errors += 1
        if idle_fill and result.checks_run == 0:
            idle_triggers, idle_duration = self.idle_fill_record()
            idled = 0.0
            while (
                trigger_pool < self.triggers_per_check and idled < max_idle_s
            ):
                t += idle_duration
                idled += idle_duration
                trigger_pool += idle_triggers
            if trigger_pool >= self.triggers_per_check:
                trigger_pool -= self.triggers_per_check
                result.triggers_consumed += self.triggers_per_check
                result.checks_run += 1
                result.events.extend(self._check(t, timeline))
        result.duration_s = t
        if timeline is not None and not result.alerts():
            # Final check so short bursts still observe late attacks.
            result.events.extend(self._check(t, timeline))
            result.checks_run += 1
        return result

    def _check(self, t: float, timeline: Optional[AttackTimeline]):
        modifiers: Sequence = ()
        if timeline is not None:
            modifiers = timeline.active_at(t)
        events = []
        for side, endpoint in (
            ("tx", self.tx_endpoint),
            ("rx", self.rx_endpoint),
        ):
            outcome = endpoint.monitor_capture(self.link.line, modifiers)
            events.append(
                LinkEvent(
                    time_s=t,
                    side=side,
                    action=outcome.action,
                    score=outcome.auth.score,
                    tampered=outcome.tamper.tampered,
                    location_m=outcome.tamper.location_m,
                )
            )
        return events
