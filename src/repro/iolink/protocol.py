"""The 8b/10b serial link as a registered protocol.

The paper's future-work direction ("extending the DIVOT design to I/O
buses") made concrete: a 5 Gb/s serial lane whose monitor is fed by the
(1, 0) trigger pattern in the live coded bit stream, on a
:class:`~repro.core.runtime.TriggerBudgetCadence`.  The spec feeds the
generic protocol layer; the framed transport
(:class:`~repro.iolink.protected.ProtectedSerialLink`) keeps its
delivery loop and delegates assembly to the same spec.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..attacks.wiretap import WireTap
from ..core.trigger import TriggerGenerator
from ..protocols.registry import register
from ..protocols.spec import ProtocolSpec, TrafficBurst
from ..signals.eightbten import Encoder8b10b
from .frame import Frame

__all__ = ["BIT_RATE", "iolink_traffic", "IOLINK_SPEC"]

#: Default line rate: 5 Gb/s, the serial lane's operating point.
BIT_RATE = 5e9


def iolink_traffic(
    rng: np.random.Generator, n_units: int
) -> Iterator[TrafficBurst]:
    """A seeded frame stream in its coded wire form.

    Each unit is one CRC-framed payload pushed through a fresh 8b/10b
    encoder (running disparity carried across frames), with triggers
    counted in the actual coded bits — the same wire the transport's
    :meth:`~repro.iolink.link.SerialLink.transmit` produces.
    """
    encoder = Encoder8b10b()
    trigger = TriggerGenerator(pattern=(1, 0))
    for i in range(n_units):
        n_payload = int(rng.integers(32, 129))
        payload = tuple(
            int(b) for b in rng.integers(0, 256, n_payload)
        )
        frame = Frame(sequence=i & 0xFF, payload=payload)
        bits = encoder.encode(frame.to_bytes())
        yield TrafficBurst(
            n_bits=len(bits),
            n_triggers=trigger.count_triggers(bits),
            duration_s=len(bits) / BIT_RATE,
            kind="frame",
        )


IOLINK_SPEC = register(
    ProtocolSpec(
        name="iolink",
        title="8b/10b serial I/O link",
        cadence="trigger-budget",
        sides=("tx", "rx"),
        endpoint_names=("serdes-tx", "serdes-rx"),
        bit_rate=BIT_RATE,
        clock_lane=False,
        traffic=iolink_traffic,
        default_attack=lambda line: WireTap(position_m=0.12),
        attack_label="inline wiretap (parallel stub clipped on the lane)",
        captures_per_check=4,
        line_seed=62,
        default_units=600,
        description=(
            "CRC-framed 8b/10b traffic at 5 Gb/s; monitoring banks "
            "(1, 0) triggers from the live coded stream."
        ),
    )
)
