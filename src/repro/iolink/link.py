"""A serial I/O link: 8b/10b-coded traffic over one Tx-line.

This is the paper's future-work target ("extending the DIVOT design to I/O
buses, network interfaces"), and it exercises the runtime-measurement
machinery of section II-E for real: a serial lane has *no clock lane*, so
the iTDR must trigger on a bit pattern in the transmit FIFO, and the
trigger supply depends on live traffic — idle links starve the monitor,
channel coding balances the edges, and the (1,0) pattern occurs at a
measurable, code-dependent rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.trigger import TriggerGenerator
from ..signals.eightbten import Decoder8b10b, Encoder8b10b
from ..signals.scrambler import Scrambler, descramble_bits
from ..txline.line import TransmissionLine
from .frame import Frame

__all__ = ["SerialLink", "TransmitRecord", "LINE_CODINGS"]

#: Supported line conditionings.
LINE_CODINGS = ("8b10b", "scrambled-nrz")


@dataclass(frozen=True)
class TransmitRecord:
    """What one transmission put on the wire.

    Attributes:
        bits: The encoded line bits.
        n_triggers: Measurement triggers the bit stream offered.
        duration_s: Wire time of the burst.
        trigger_rate: Triggers per second during the burst.
    """

    bits: np.ndarray
    n_triggers: int
    duration_s: float
    trigger_rate: float


class SerialLink:
    """One 8b/10b-coded serial lane over a physical Tx-line.

    Attributes:
        line: The conductor (and its IIP fingerprint).
        bit_rate: Line rate in bits per second.
        coding: Line conditioning — ``"8b10b"`` (table coding, 25 %
            overhead, bounded runs) or ``"scrambled-nrz"`` (LFSR
            side-stream scrambling, zero overhead, probabilistic runs).
        trigger: The iTDR trigger pattern detector watching the transmit
            stream.
    """

    def __init__(
        self,
        line: TransmissionLine,
        bit_rate: float = 5e9,
        coding: str = "8b10b",
    ) -> None:
        if bit_rate <= 0:
            raise ValueError("bit_rate must be positive")
        if coding not in LINE_CODINGS:
            raise ValueError(
                f"coding must be one of {LINE_CODINGS}, got {coding!r}"
            )
        self.line = line
        self.bit_rate = bit_rate
        self.coding = coding
        self.trigger = TriggerGenerator(pattern=(1, 0))
        self._encoder = Encoder8b10b()
        self._decoder = Decoder8b10b()

    # ------------------------------------------------------------------
    def encode_frames(self, frames: Sequence[Frame]) -> np.ndarray:
        """Serialise frames into the conditioned line-bit stream."""
        payload: List[int] = []
        for frame in frames:
            payload.extend(frame.to_bytes())
        if self.coding == "8b10b":
            return self._encoder.encode(payload)
        return Scrambler().process_bytes(payload)

    def decode_frames(self, bits: np.ndarray) -> List[Frame]:
        """Recover frames from a received line-bit stream."""
        if self.coding == "8b10b":
            data = self._decoder.decode(bits)
        else:
            data = descramble_bits(bits)
        return Frame.parse_stream(data)

    # ------------------------------------------------------------------
    def transmit(self, frames: Sequence[Frame]) -> TransmitRecord:
        """Put frames on the wire and account for the triggers they offer."""
        bits = self.encode_frames(frames)
        n_triggers = self.trigger.count_triggers(bits)
        duration = len(bits) / self.bit_rate
        rate = n_triggers / duration if duration > 0 else 0.0
        return TransmitRecord(
            bits=bits,
            n_triggers=n_triggers,
            duration_s=duration,
            trigger_rate=rate,
        )

    def encode_idle(self, n_symbols: int) -> np.ndarray:
        """The conditioned bit stream of ``n_symbols`` idle bytes (0xB5).

        Idle traffic keeps the receiver's bit lock and — under DIVOT —
        keeps the trigger supply alive while no frames are queued.
        """
        if n_symbols < 1:
            raise ValueError("n_symbols must be >= 1")
        idle = [0xB5] * n_symbols
        if self.coding == "8b10b":
            return Encoder8b10b().encode(idle)
        return Scrambler().process_bytes(idle)

    def measured_trigger_rate(self, n_sample_bytes: int = 4096,
                              seed: int = 0) -> float:
        """Empirical trigger rate of conditioned random traffic, per second.

        The exact figure is a property of the line conditioning, measured
        rather than assumed: scrambled streams behave like ideal random
        data (~0.25/bit); 8b/10b's table structure fires measurably more
        often (~0.305/bit).
        """
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=n_sample_bytes).tolist()
        if self.coding == "8b10b":
            bits = Encoder8b10b().encode(data)
        else:
            bits = Scrambler().process_bytes(data)
        return self.trigger.count_triggers(bits) / len(bits) * self.bit_rate

    def time_for_triggers(self, n_triggers: int,
                          duty_cycle: float = 1.0) -> float:
        """Wall-clock time for the link to supply ``n_triggers`` triggers.

        ``duty_cycle`` scales for partially idle links — the honest cost of
        data-lane monitoring: no traffic, no probes, no measurement.
        """
        if n_triggers < 0:
            raise ValueError("n_triggers must be non-negative")
        if not 0 < duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        return n_triggers / (self.measured_trigger_rate() * duty_cycle)
