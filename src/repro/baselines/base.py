"""Common interface for prior-art countermeasures (paper section V).

The paper positions DIVOT against four hardware countermeasure families:
the ring-oscillator probe attempt detector (PAD, Manich et al.), DC trace-
resistance monitoring (Paley et al.), input-impedance PUFs measured with an
impedance analyzer (Zhang et al.), and VNA-extracted IIP PUFs (Wei et al.).
Each differs along the same axes: can it run *concurrently* with data
transfer, can it run at *runtime* at all, which attack classes perturb the
physical quantity it watches, and what does it cost.  The baseline models
here capture those mechanisms so the comparison becomes measurable instead
of rhetorical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..txline.line import TransmissionLine

__all__ = ["DetectorTraits", "BaselineDetector", "DEFAULT_BASELINE_SEED"]

#: Fallback seed when a detector is built with neither ``rng`` nor
#: ``seed``: baseline comparisons must be reproducible by default — an
#: OS-entropy generator here made every unseeded run's noise floors and
#: detection verdicts unrepeatable.
DEFAULT_BASELINE_SEED = 0


@dataclass(frozen=True)
class DetectorTraits:
    """Deployment properties of a countermeasure.

    Attributes:
        name: Detector family name.
        concurrent_with_data: Can it measure while traffic flows?
        runtime_capable: Can it run in a fielded system at all (versus
            factory/incoming-inspection only)?
        integrated: Fits on-chip/on-board (versus bench equipment)?
        relative_cost: Rough cost score, 1.0 = DIVOT's integrated logic.
    """

    name: str
    concurrent_with_data: bool
    runtime_capable: bool
    integrated: bool
    relative_cost: float


class BaselineDetector:
    """A physical-quantity watcher with an enroll/score/detect protocol.

    Subclasses define :meth:`observable`: the scalar or vector physical
    quantity the detector measures from a line state.  Enrollment captures
    the clean observable (with measurement noise); detection compares a
    fresh observation against it.
    """

    traits: DetectorTraits

    def __init__(
        self,
        measurement_noise: float,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> None:
        if measurement_noise < 0:
            raise ValueError("measurement_noise must be non-negative")
        if rng is not None and seed is not None:
            raise ValueError("pass rng or seed, not both")
        self.measurement_noise = measurement_noise
        if rng is None:
            rng = np.random.default_rng(
                DEFAULT_BASELINE_SEED if seed is None else seed
            )
        self.rng = rng
        self._reference: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def observable(
        self, line: TransmissionLine, modifiers: Sequence = ()
    ) -> np.ndarray:
        """The noiseless physical quantity this detector watches."""
        raise NotImplementedError

    def measure(
        self, line: TransmissionLine, modifiers: Sequence = ()
    ) -> np.ndarray:
        """One noisy measurement of the observable."""
        clean = np.atleast_1d(self.observable(line, modifiers))
        noise = self.rng.normal(0.0, self.measurement_noise, size=clean.shape)
        return clean * (1.0 + noise)

    # ------------------------------------------------------------------
    def enroll(self, line: TransmissionLine, n_measurements: int = 8) -> None:
        """Record the clean reference observable."""
        if n_measurements < 1:
            raise ValueError("n_measurements must be >= 1")
        obs = [self.measure(line) for _ in range(n_measurements)]
        self._reference = np.mean(obs, axis=0)

    def deviation(
        self, line: TransmissionLine, modifiers: Sequence = ()
    ) -> float:
        """Relative deviation of a fresh measurement from the reference."""
        if self._reference is None:
            raise RuntimeError("detector must enroll before measuring deviations")
        fresh = self.measure(line, modifiers)
        ref = self._reference
        scale = np.linalg.norm(ref)
        if scale == 0:
            return float(np.linalg.norm(fresh - ref))
        return float(np.linalg.norm(fresh - ref) / scale)

    def detects(
        self,
        line: TransmissionLine,
        modifiers: Sequence,
        threshold: float,
    ) -> bool:
        """Whether a fresh measurement under attack crosses the threshold."""
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        return self.deviation(line, modifiers) > threshold

    def noise_floor(
        self, line: TransmissionLine, n_measurements: int = 16
    ) -> float:
        """Largest clean-condition deviation over repeated measurements.

        The calibration quantity a deployment threshold must exceed.
        """
        if n_measurements < 1:
            raise ValueError("n_measurements must be >= 1")
        return max(self.deviation(line) for _ in range(n_measurements))
