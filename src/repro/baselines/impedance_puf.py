"""Input-impedance PUF — Zhang, Hennessy & Bhunia, VTS 2015.

Trace-to-trace input impedance variation identifies a board (counterfeit
detection in the supply chain).  The paper's criticisms: the measurement
needs a bulky impedance analyzer, so there is *no runtime protection*, and
identification performance trails waveform-grade PUFs because the feature
is a handful of scalars, not a spatial pattern.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..txline.line import TransmissionLine
from .base import BaselineDetector, DetectorTraits

__all__ = ["InputImpedancePUF"]


class InputImpedancePUF(BaselineDetector):
    """Low-frequency input-impedance feature extractor.

    The analyzer sees the line's input impedance at a few spot frequencies;
    at wavelengths long against the trace, these collapse to weighted
    averages of the impedance profile — a 4-component feature vector here
    (mean, first moment, second moment, termination).  Spatially localised
    perturbations wash out in the averaging, which is exactly why this PUF
    identifies *boards* but cannot localise or reliably detect *probes*.
    """

    traits = DetectorTraits(
        name="input-impedance PUF (Zhang)",
        concurrent_with_data=False,
        runtime_capable=False,  # bench impedance analyzer required
        integrated=False,
        relative_cost=40.0,
    )

    def __init__(
        self, measurement_noise: float = 2e-3, rng=None, seed=None
    ) -> None:
        super().__init__(
            measurement_noise=measurement_noise, rng=rng, seed=seed
        )

    def observable(
        self, line: TransmissionLine, modifiers: Sequence = ()
    ) -> np.ndarray:
        """Moment features of the impedance profile."""
        profile = line.profile_under(modifiers)
        z = profile.z
        x = np.linspace(0.0, 1.0, len(z))
        return np.array(
            [
                float(np.mean(z)),
                float(np.mean(z * x)),
                float(np.mean(z * x**2)),
                profile.z_load,
            ]
        )

    def identify(
        self,
        candidates: Sequence[TransmissionLine],
        observed: np.ndarray,
    ) -> int:
        """Nearest-feature identification among candidate lines."""
        if len(candidates) == 0:
            raise ValueError("at least one candidate is required")
        observed = np.asarray(observed, dtype=float)
        features = [self.observable(c) for c in candidates]
        dists = [np.linalg.norm(observed - f) for f in features]
        return int(np.argmin(dists))
