"""Probe Attempt Detector (PAD) — Manich, Wamser & Sigl, HOST 2012.

A ring oscillator is multiplexed onto the victim wire; a physical probe
adds load capacitance, which slows the oscillator measurably.  The paper's
criticism: a PAD'd wire is either *decoding* (carrying data) or under
*surveillance* — never both — so PAD cannot protect a live bus, and it
senses capacitance only (a purely inductive perturbation such as a magnetic
probe barely registers).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..attacks.base import Attack
from ..txline.line import TransmissionLine
from .base import BaselineDetector, DetectorTraits

__all__ = ["ProbeAttemptDetector"]


class ProbeAttemptDetector(BaselineDetector):
    """Ring-oscillator load-capacitance watcher.

    The oscillator frequency is ``f0 / (1 + C_line / C_ro)``: total wire
    capacitance loads each inversion stage.  Per-segment capacitance of a
    Tx-line is ``tau / z`` (from Z = sqrt(L/C), v*tau = length), so the
    observable reduces to a single scalar — which is both PAD's strength
    (tiny circuit) and its weakness (no localisation, capacitance only).
    """

    traits = DetectorTraits(
        name="PAD (ring oscillator)",
        concurrent_with_data=False,  # decode XOR surveillance
        runtime_capable=True,  # but only in idle windows
        integrated=True,
        relative_cost=0.5,
    )

    def __init__(
        self,
        f0_hz: float = 900e6,
        c_ro_farads: float = 10e-12,
        measurement_noise: float = 3e-5,
        rng=None,
        seed=None,
    ) -> None:
        if f0_hz <= 0 or c_ro_farads <= 0:
            raise ValueError("f0_hz and c_ro_farads must be positive")
        super().__init__(
            measurement_noise=measurement_noise, rng=rng, seed=seed
        )
        self.f0_hz = f0_hz
        self.c_ro_farads = c_ro_farads

    def line_capacitance(
        self, line: TransmissionLine, modifiers: Sequence = ()
    ) -> float:
        """Total wire capacitance: sum of per-segment tau/Z.

        Only *capacitive* perturbations register: an attack that changes
        inductance alone (a magnetic probe) moves Z and tau together and
        leaves C untouched, so it is filtered out — the physical reason PAD
        cannot see EM probes.
        """
        visible = [
            m
            for m in modifiers
            if not isinstance(m, Attack) or "capacitive" in m.mechanisms
        ]
        profile = line.profile_under(visible)
        return float(np.sum(profile.tau / profile.z))

    def observable(
        self, line: TransmissionLine, modifiers: Sequence = ()
    ) -> np.ndarray:
        """The ring-oscillator frequency under the given line state."""
        c_line = self.line_capacitance(line, modifiers)
        f = self.f0_hz / (1.0 + c_line / self.c_ro_farads)
        return np.array([f])
