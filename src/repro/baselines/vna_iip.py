"""VNA-extracted IIP PUF — Wei & Huang, IEEE J-RFID 2019.

The direct ancestor of DIVOT: the *same* fingerprint (the IIP), measured
with a vector network analyzer.  Identification quality is excellent — a
VNA resolves the profile more finely than the iTDR — but the instrument is
bench equipment: it cannot sit in a computer, cannot share the line with
live traffic, and costs orders of magnitude more than a comparator and a
counter.  DIVOT's contribution is precisely closing that gap.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..txline.line import TransmissionLine
from .base import BaselineDetector, DetectorTraits

__all__ = ["VNAIIPReader"]


class VNAIIPReader(BaselineDetector):
    """High-fidelity offline IIP reader.

    The observable is the full reflection-coefficient profile — essentially
    the ground-truth IIP with only instrument-grade (very small) noise.
    """

    traits = DetectorTraits(
        name="VNA IIP PUF (Wei)",
        concurrent_with_data=False,
        runtime_capable=False,  # bench VNA
        integrated=False,
        relative_cost=200.0,
    )

    def __init__(
        self, measurement_noise: float = 1e-4, rng=None, seed=None
    ) -> None:
        super().__init__(
            measurement_noise=measurement_noise, rng=rng, seed=seed
        )

    def observable(
        self, line: TransmissionLine, modifiers: Sequence = ()
    ) -> np.ndarray:
        """The interface reflection-coefficient profile (the raw IIP)."""
        profile = line.profile_under(modifiers)
        return profile.reflection_coefficients()

    def similarity(
        self,
        line_a: TransmissionLine,
        line_b: TransmissionLine,
    ) -> float:
        """Normalised IIP similarity as the VNA would score it."""
        a = self.measure(line_a)
        b = self.measure(line_b)
        a = a - a.mean()
        b = b - b.mean()
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.5
        return float((1.0 + np.dot(a, b) / denom) / 2.0)
