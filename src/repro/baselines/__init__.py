"""Prior-art countermeasure models for the section-V comparison.

Each baseline watches a different physical quantity with different
deployment constraints; the comparison experiment runs the same attack
suite against all of them and against DIVOT.
"""

from .base import BaselineDetector, DetectorTraits
from .dc_resistance import DCResistanceMonitor
from .impedance_puf import InputImpedancePUF
from .pad import ProbeAttemptDetector
from .vna_iip import VNAIIPReader

__all__ = [
    "BaselineDetector",
    "DetectorTraits",
    "ProbeAttemptDetector",
    "DCResistanceMonitor",
    "InputImpedancePUF",
    "VNAIIPReader",
]
