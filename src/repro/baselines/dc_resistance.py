"""DC trace-resistance monitoring — Paley, Hoque & Bhunia, ISQED 2016.

Copper trace resistance is measured with a quiescent DC drive; tampering
that adds/removes copper (soldered taps, cut-and-rejoin, replaced parts)
shifts it.  The paper's criticisms, all of which this model exhibits:
the voltage on the monitored trace must stay *stable during measurement*
(no data transfer), AC-coupled buses cannot be measured at all, and a
purely electromagnetic perturbation (magnetic probe) leaves DC resistance
untouched.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..attacks.base import Attack
from ..txline.line import TransmissionLine
from .base import BaselineDetector, DetectorTraits

__all__ = ["DCResistanceMonitor"]


class DCResistanceMonitor(BaselineDetector):
    """Kelvin-sense DC resistance watcher for PCB traces.

    The observable is loop resistance: per-segment copper resistance (from
    the line's loss model) plus the termination.  Only *galvanic* attacks
    perturb it — non-contact EM probes are filtered out explicitly, which
    is physics, not charity: eddy-current coupling has no DC path.
    """

    traits = DetectorTraits(
        name="DC resistance (Paley)",
        concurrent_with_data=False,  # needs a quiet line
        runtime_capable=True,  # idle windows only; not for AC-coupled buses
        integrated=True,
        relative_cost=0.8,
    )

    def __init__(
        self,
        copper_ohm_per_m: float = 0.25,
        measurement_noise: float = 5e-4,
        rng=None,
        seed=None,
    ) -> None:
        if copper_ohm_per_m <= 0:
            raise ValueError("copper_ohm_per_m must be positive")
        super().__init__(
            measurement_noise=measurement_noise, rng=rng, seed=seed
        )
        self.copper_ohm_per_m = copper_ohm_per_m

    def observable(
        self, line: TransmissionLine, modifiers: Sequence = ()
    ) -> np.ndarray:
        """Loop resistance, blind to non-galvanic modifiers."""
        galvanic = [
            m
            for m in modifiers
            if isinstance(m, Attack) and "galvanic" in m.mechanisms
        ]
        profile = line.profile_under(galvanic)
        velocity = line.material.velocity_at(line.material.t_ref_c)
        length = float(np.sum(profile.tau)) * velocity
        # Kelvin sensing measures the trace copper alone (the termination
        # is excluded, or its much larger resistance would mask everything).
        # A tap/solder joint adds parallel copper and disturbs the etched
        # cross-section; the induced change tracks the local impedance
        # disturbance the galvanic act caused.
        base = line.profile_under(())
        z_shift = float(np.sum(np.abs(profile.z - base.z) / base.z))
        return np.array(
            [self.copper_ohm_per_m * length * (1.0 + 2.0 * z_shift)]
        )
