"""JTAG (IEEE 1149.1) as a DIVOT-protected link.

A probe clipped onto a debug header is *literally* the paper's threat
model: JTAG exposes scan access to every chip on the chain, and the
physical port is the classic entry point for readout and fault attacks.
DIVOT endpoints at the controller and the first TAP authenticate the
debug bus itself — a clipped-on pod disturbs the IIP before a single
scan completes.

The traffic model walks the real 16-state TAP state machine (state names
and TMS transition table per IEEE Std 1149.1, after Glasgow's
``jtag_probe`` applet): instruction and data register scans move through
Select/Capture/Shift/Exit1/Update, with occasional Pause excursions and
Test-Logic-Reset re-entries.  TCK is a clock lane — every cycle launches
the same edge, so the trigger supply is unconditional and monitoring
runs on a :class:`~repro.core.runtime.PeriodicCadence`.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..attacks.probe import CapacitiveSnoop
from .registry import register
from .spec import ProtocolSpec, TrafficBurst

__all__ = [
    "JTAGState",
    "JTAG_TRANSITIONS",
    "TAPController",
    "tms_path",
    "scan_lengths",
    "jtag_traffic",
    "JTAG_SPEC",
]

#: Default TCK rate: 10 MHz, a common debug-pod operating point.
TCK_RATE = 10e6


class JTAGState(str, enum.Enum):
    """TAP controller states; names are SVF, values are IEEE names."""

    RESET = "Test-Logic-Reset"
    IDLE = "Run-Test/Idle"
    DRSELECT = "Select-DR-Scan"
    DRCAPTURE = "Capture-DR"
    DRSHIFT = "Shift-DR"
    DREXIT1 = "Exit1-DR"
    DRPAUSE = "Pause-DR"
    DREXIT2 = "Exit2-DR"
    DRUPDATE = "Update-DR"
    IRSELECT = "Select-IR-Scan"
    IRCAPTURE = "Capture-IR"
    IRSHIFT = "Shift-IR"
    IREXIT1 = "Exit1-IR"
    IRPAUSE = "Pause-IR"
    IREXIT2 = "Exit2-IR"
    IRUPDATE = "Update-IR"


#: ``state -> (next if TMS=0, next if TMS=1)`` — the IEEE 1149.1 figure
#: 6-1 state diagram as a table.
JTAG_TRANSITIONS: Dict[JTAGState, Tuple[JTAGState, JTAGState]] = {
    JTAGState.RESET: (JTAGState.IDLE, JTAGState.RESET),
    JTAGState.IDLE: (JTAGState.IDLE, JTAGState.DRSELECT),
    JTAGState.DRSELECT: (JTAGState.DRCAPTURE, JTAGState.IRSELECT),
    JTAGState.DRCAPTURE: (JTAGState.DRSHIFT, JTAGState.DREXIT1),
    JTAGState.DRSHIFT: (JTAGState.DRSHIFT, JTAGState.DREXIT1),
    JTAGState.DREXIT1: (JTAGState.DRPAUSE, JTAGState.DRUPDATE),
    JTAGState.DRPAUSE: (JTAGState.DRPAUSE, JTAGState.DREXIT2),
    JTAGState.DREXIT2: (JTAGState.DRSHIFT, JTAGState.DRUPDATE),
    JTAGState.DRUPDATE: (JTAGState.IDLE, JTAGState.DRSELECT),
    JTAGState.IRSELECT: (JTAGState.IRCAPTURE, JTAGState.RESET),
    JTAGState.IRCAPTURE: (JTAGState.IRSHIFT, JTAGState.IREXIT1),
    JTAGState.IRSHIFT: (JTAGState.IRSHIFT, JTAGState.IREXIT1),
    JTAGState.IREXIT1: (JTAGState.IRPAUSE, JTAGState.IRUPDATE),
    JTAGState.IRPAUSE: (JTAGState.IRPAUSE, JTAGState.IREXIT2),
    JTAGState.IREXIT2: (JTAGState.IRSHIFT, JTAGState.IRUPDATE),
    JTAGState.IRUPDATE: (JTAGState.IDLE, JTAGState.DRSELECT),
}


class TAPController:
    """A behavioural TAP: clocks TMS bits, tracks the 1149.1 state."""

    def __init__(self) -> None:
        # Five TMS=1 cycles reach Test-Logic-Reset from any state, so a
        # fresh controller starts there by definition.
        self.state = JTAGState.RESET

    def step(self, tms: int) -> JTAGState:
        """Clock one TCK cycle with the given TMS level."""
        if tms not in (0, 1):
            raise ValueError("tms must be 0 or 1")
        self.state = JTAG_TRANSITIONS[self.state][tms]
        return self.state

    def walk(self, tms_bits) -> JTAGState:
        """Clock a whole TMS sequence; returns the final state."""
        for tms in tms_bits:
            self.step(int(tms))
        return self.state


def tms_path(start: JTAGState, target: JTAGState) -> List[int]:
    """Shortest TMS sequence from ``start`` to ``target`` (BFS).

    The state graph is strongly connected, so a path always exists;
    ``start == target`` gives the empty path.
    """
    if start is target:
        return []
    frontier = [(start, [])]
    seen = {start}
    while frontier:
        next_frontier = []
        for state, path in frontier:
            for tms in (0, 1):
                nxt = JTAG_TRANSITIONS[state][tms]
                if nxt is target:
                    return path + [tms]
                if nxt not in seen:
                    seen.add(nxt)
                    next_frontier.append((nxt, path + [tms]))
        frontier = next_frontier
    raise RuntimeError("TAP state graph is connected; unreachable")


def scan_lengths(kind: str, n_shift_bits: int, pause_cycles: int = 0) -> int:
    """TCK cycles one register scan occupies, from Run-Test/Idle back.

    ``kind`` is ``"ir"`` or ``"dr"``.  The walk is
    Idle -> Select(-IR) -> Capture -> Shift (``n_shift_bits`` cycles,
    the last one exiting) -> [Pause excursion] -> Update -> Idle, which
    is 5 overhead cycles plus the shift bits, plus ``2 + pause_cycles``
    when the scan parks in Pause (Exit1 -> Pause ... -> Exit2).
    """
    if kind not in ("ir", "dr"):
        raise ValueError("kind must be 'ir' or 'dr'")
    if n_shift_bits < 1:
        raise ValueError("n_shift_bits must be >= 1")
    if pause_cycles < 0:
        raise ValueError("pause_cycles must be non-negative")
    overhead = 5 if kind == "dr" else 6  # IR path crosses Select-DR too
    pause = (2 + pause_cycles) if pause_cycles else 0
    return overhead + n_shift_bits + pause


def _scan_tms(kind: str, n_shift_bits: int, pause_cycles: int) -> List[int]:
    """The TMS sequence realising :func:`scan_lengths`' cycle count."""
    tms = [1] if kind == "dr" else [1, 1]  # Select-DR(-Scan) [-> Select-IR]
    tms += [0, 0]  # Capture -> Shift
    tms += [0] * (n_shift_bits - 1)  # stay in Shift
    tms += [1]  # last shift bit exits to Exit1
    if pause_cycles:
        tms += [0]  # Exit1 -> Pause
        tms += [0] * pause_cycles  # dwell in Pause
        tms += [1]  # Pause -> Exit2
        tms += [1]  # Exit2 -> Update
    else:
        tms += [1]  # Exit1 -> Update
    tms += [0]  # Update -> Idle
    return tms


def jtag_traffic(
    rng: np.random.Generator, n_units: int
) -> Iterator[TrafficBurst]:
    """A seeded debug session: IR/DR scans with idle and reset breaks.

    Each unit is one TAP operation validated against the transition
    table (the TMS walk must land back in Run-Test/Idle), so the burst
    lengths are exact cycle counts of legal 1149.1 traffic.
    """
    tap = TAPController()
    tap.walk([1] * 5)  # harness reset: five TMS=1 reach Test-Logic-Reset
    tap.step(0)  # settle in Run-Test/Idle
    for _ in range(n_units):
        roll = rng.random()
        if roll < 0.15:
            # Re-synchronise: Test-Logic-Reset and back to Idle.
            cycles = 6
            tap.walk([1] * 5)
            tap.step(0)
            kind = "reset"
        elif roll < 0.30:
            # Run-Test/Idle dwell (e.g. waiting out an operation).
            cycles = int(rng.integers(4, 33))
            tap.walk([0] * cycles)
            kind = "idle"
        else:
            scan = "ir" if roll < 0.55 else "dr"
            n_bits = (
                int(rng.integers(4, 9))
                if scan == "ir"
                else int(rng.integers(8, 33))
            )
            pause = int(rng.integers(0, 5)) if rng.random() < 0.2 else 0
            tms = _scan_tms(scan, n_bits, pause)
            cycles = len(tms)
            assert cycles == scan_lengths(scan, n_bits, pause)
            end = tap.walk(tms)
            assert end is JTAGState.IDLE
            kind = f"{scan}-scan"
        # TCK is a clock lane: every cycle is a trigger.
        yield TrafficBurst(
            n_bits=cycles,
            n_triggers=cycles,
            duration_s=cycles / TCK_RATE,
            kind=kind,
        )


JTAG_SPEC = register(
    ProtocolSpec(
        name="jtag",
        title="JTAG debug port (IEEE 1149.1)",
        cadence="periodic",
        sides=("controller", "tap"),
        endpoint_names=("jtag-ctrl", "jtag-tap"),
        bit_rate=TCK_RATE,
        clock_lane=True,
        traffic=jtag_traffic,
        default_attack=lambda line: CapacitiveSnoop(position_m=0.12),
        attack_label="debug-port probe tap (capacitive pod on TCK)",
        captures_per_check=4,
        line_seed=84,
        default_units=4000,
        description=(
            "TAP state-machine traffic on a 10 MHz TCK clock lane; "
            "monitoring is free-running like the memory bus clock."
        ),
    )
)
