"""The protected-link protocol registry.

Protocols self-register at import time: a provider module builds a
:class:`~repro.protocols.spec.ProtocolSpec` and calls :func:`register`.
Two kinds of provider exist:

* the built-in protocol modules under ``repro/protocols/`` (JTAG, SPI,
  I2C) — imported eagerly by the package ``__init__``;
* application packages contributing their workload's protocol as a
  ``protocol`` module (``repro.membus.protocol``,
  ``repro.iolink.protocol``) — discovered by :func:`load_all` via
  ``pkgutil``, by *name* rather than by import statement, so the layer
  rule "core and protocols never import applications" holds in the
  static import graph while applications still plug in (the classic
  entry-point pattern).

Registration is idempotent per provider (re-importing a module re-offers
the same spec harmlessly) but refuses silent replacement: two different
specs under one name is a wiring bug.
"""

from __future__ import annotations

import importlib
import importlib.util
import pkgutil
from dataclasses import replace
from typing import Dict, List

from .spec import ProtocolSpec

__all__ = ["register", "unregister", "get", "names", "specs", "load_all"]

_REGISTRY: Dict[str, ProtocolSpec] = {}

#: Modules in this package that are infrastructure, not protocols.
_INFRASTRUCTURE = frozenset(
    {"__init__", "spec", "registry", "link", "fleet"}
)


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Add one protocol to the registry; returns the registered spec.

    The provider module is recorded on the spec (from the traffic
    model's ``__module__``) so completeness tooling can map registry
    entries back to source modules.
    """
    provider = getattr(spec.traffic, "__module__", None)
    if spec.provider != provider:
        spec = replace(spec, provider=provider)
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        if existing == spec:
            return existing
        raise ValueError(
            f"protocol {spec.name!r} already registered by "
            f"{existing.provider}; refusing to replace it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Drop one protocol (testing hook; production registries only grow)."""
    _REGISTRY.pop(name, None)


def load_all() -> List[str]:
    """Import every known provider; returns the registered names.

    Walks this package for built-in protocol modules, then every
    ``repro.<package>.protocol`` module an application package ships —
    resolved through ``importlib`` by dotted name, so applications stay
    invisible to the protocols layer's static import graph.
    """
    package = importlib.import_module(__package__)
    for module in pkgutil.iter_modules(package.__path__):
        if module.name not in _INFRASTRUCTURE:
            importlib.import_module(f"{__package__}.{module.name}")
    root = importlib.import_module(__package__.rsplit(".", 1)[0])
    for module in pkgutil.iter_modules(root.__path__):
        if not module.ispkg or module.name == "protocols":
            continue
        provider = f"{root.__name__}.{module.name}.protocol"
        if importlib.util.find_spec(provider) is not None:
            importlib.import_module(provider)
    return names()


def get(name: str) -> ProtocolSpec:
    """The spec registered under ``name`` (loading providers if needed)."""
    if name not in _REGISTRY:
        load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no protocol {name!r}; registered: {names()}"
        ) from None


def names() -> List[str]:
    """Registered protocol names, sorted."""
    return sorted(_REGISTRY)


def specs() -> List[ProtocolSpec]:
    """Registered specs, sorted by name."""
    return [_REGISTRY[name] for name in names()]
