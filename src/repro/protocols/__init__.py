"""The pluggable protected-link layer: protocols as data, not code.

The memory bus and the serial link started as two hand-built
applications that each assembled DIVOT endpoints, cadence arithmetic,
and telemetry by hand.  This package dissolves that duplication into a
declarative registry: a protocol contributes one
:class:`~repro.protocols.spec.ProtocolSpec` — its framing, its seeded
traffic model, its trigger extraction, its cadence discipline, its
canonical attack scenario — and the generic
:class:`~repro.protocols.link.ProtectedLink` assembles everything else.

Three protocols ship here (JTAG, SPI, I2C); the memory bus and the
serial link contribute their specs from their own packages
(``repro.membus.protocol``, ``repro.iolink.protocol``), discovered by
:func:`~repro.protocols.registry.load_all`.  Mixed-protocol fleets ride
the sharded executor via :func:`~repro.protocols.fleet.build_protocol_fleet`.

Adding a protocol is: write a traffic model, declare a spec, call
:func:`~repro.protocols.registry.register`.  See
``docs/ARCHITECTURE.md`` for the recipe.
"""

from . import registry
from .fleet import build_protocol_fleet, default_attacks_by_bus
from .link import LinkSessionResult, ProtectedLink, default_tamper_detector
from .spec import ProtocolSpec, TrafficBurst

# Built-in protocols self-register at import time; external providers
# (membus, iolink) are discovered lazily by registry.load_all().
from . import jtag as _jtag  # noqa: F401
from . import spi as _spi  # noqa: F401
from . import i2c as _i2c  # noqa: F401

__all__ = [
    "registry",
    "ProtocolSpec",
    "TrafficBurst",
    "ProtectedLink",
    "LinkSessionResult",
    "default_tamper_detector",
    "build_protocol_fleet",
    "default_attacks_by_bus",
]
