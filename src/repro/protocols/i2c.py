"""I2C (fast-mode) as a DIVOT-protected link.

I2C is the board-management plane: EEPROMs, sensors, power controllers —
all addressed over two shared wires with no authentication whatsoever.
The canonical hardware implant is a trojan peripheral soldered onto the
bus that claims an address (or shadows a legitimate one): electrically
it changes the termination network the moment it is attached, which is
exactly the load modification DIVOT's IIP monitoring detects.

Traffic is addressed transactions: START, a 7-bit address plus the R/W
bit, per-byte acknowledges, a 1-4 byte payload, STOP — with seeded
clock-stretching (a slow peripheral holding SCL) lengthening a
transaction's wire time without adding data edges.  The data (SDA) lane
is trigger-fed like SPI, on a much slower clock: monitoring cost in
*time* is two orders of magnitude higher at the same trigger budget,
which is the honest price of protecting a 400 kHz bus.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from ..attacks.trojan import LoadModification
from ..core.trigger import TriggerGenerator
from .registry import register
from .spec import ProtocolSpec, TrafficBurst

__all__ = ["SCL_RATE", "i2c_transaction_bits", "i2c_traffic", "I2C_SPEC"]

#: Fast-mode serial clock: 400 kHz.
SCL_RATE = 400e3

#: Reserved address space below 0x08 and above 0x77 is never claimed.
ADDRESS_RANGE = (0x08, 0x78)


def i2c_transaction_bits(
    address: int, read: bool, data: List[int]
) -> List[int]:
    """The SDA bit sequence of one addressed transaction.

    7-bit address MSB-first, the R/W bit, then each byte MSB-first, each
    nine-bit group closed by an ACK (0).  START/STOP conditions are level
    transitions outside the bit clock and carried as framing overhead by
    the traffic model, not as data bits.
    """
    lo, hi = ADDRESS_RANGE
    if not lo <= address < hi:
        raise ValueError(
            f"address must be in [{lo:#04x}, {hi:#04x}), got {address:#04x}"
        )
    if not data:
        raise ValueError("at least one data byte is required")
    bits = [(address >> shift) & 1 for shift in range(6, -1, -1)]
    bits.append(1 if read else 0)
    bits.append(0)  # address ACK
    for byte in data:
        if not 0 <= byte <= 0xFF:
            raise ValueError("data bytes must be in [0, 255]")
        bits.extend((byte >> shift) & 1 for shift in range(7, -1, -1))
        bits.append(0)  # byte ACK
    return bits


def i2c_traffic(
    rng: np.random.Generator, n_units: int
) -> Iterator[TrafficBurst]:
    """A seeded management-plane session: short addressed transfers.

    A quarter of transactions hit a slow peripheral that stretches the
    clock after the address phase — pure added wire time (SCL held low
    puts no edges on SDA), so stretching lowers the *trigger rate*
    without changing the trigger count, a property the trigger-budget
    cadence handles for free.
    """
    trigger = TriggerGenerator(pattern=(1, 0))
    lo, hi = ADDRESS_RANGE
    for _ in range(n_units):
        address = int(rng.integers(lo, hi))
        read = bool(rng.integers(0, 2))
        data = [int(b) for b in rng.integers(0, 256, int(rng.integers(1, 5)))]
        bits = i2c_transaction_bits(address, read, data)
        stretch = int(rng.integers(2, 17)) if rng.random() < 0.25 else 0
        n_bits = len(bits) + 2 + stretch  # START + STOP + held cycles
        yield TrafficBurst(
            n_bits=n_bits,
            n_triggers=trigger.count_triggers(bits),
            duration_s=n_bits / SCL_RATE,
            kind="read" if read else "write",
        )


I2C_SPEC = register(
    ProtocolSpec(
        name="i2c",
        title="I2C fast-mode management bus",
        cadence="trigger-budget",
        sides=("controller", "target"),
        endpoint_names=("i2c-ctrl", "i2c-target"),
        bit_rate=SCL_RATE,
        clock_lane=False,
        traffic=i2c_traffic,
        default_attack=lambda line: LoadModification(),
        attack_label=(
            "trojan peripheral claiming an address (termination-network "
            "load change at attach time)"
        ),
        captures_per_check=4,
        line_seed=86,
        default_units=10000,
        description=(
            "Addressed transactions with clock-stretching at 400 kHz; "
            "trigger-fed monitoring like SPI, on a far slower clock."
        ),
    )
)
