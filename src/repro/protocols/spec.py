"""Declarative protocol specification for DIVOT-protected links.

A :class:`ProtocolSpec` is everything the generic
:class:`~repro.protocols.link.ProtectedLink` needs to protect one kind
of bus: the link topology (sides and endpoint names), the line rate and
trigger extraction, which cadence discipline schedules monitoring checks
(clock lanes get :class:`~repro.core.runtime.PeriodicCadence`, data
lanes get :class:`~repro.core.runtime.TriggerBudgetCadence`), a seeded
traffic model producing :class:`TrafficBurst` streams, and the
protocol's canonical attack scenario.  Specs are plain frozen data —
registering one (see :mod:`repro.protocols.registry`) is all a new
protocol needs to inherit the whole stack: runtime telemetry, event
logs, fleet sharding, fault recovery, and 1:N identification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Tuple

import numpy as np

from ..core.trigger import TriggerGenerator

__all__ = ["CADENCE_KINDS", "DEFAULT_TRAFFIC_SEED", "TrafficBurst",
           "ProtocolSpec"]

#: Cadence disciplines a spec may choose from.
CADENCE_KINDS = ("periodic", "trigger-budget")

#: Seed for a spec's traffic model when the caller passes neither ``rng``
#: nor ``seed`` — the PR-3 discipline: defaults are seeded, never the
#: process-global generator.
DEFAULT_TRAFFIC_SEED = 0


@dataclass(frozen=True)
class TrafficBurst:
    """One burst of protocol traffic, reduced to what monitoring needs.

    Attributes:
        n_bits: Bit times the burst occupies on the wire (including
            framing overhead such as chip-select or start/stop
            conditions and clock stretching).
        n_triggers: Measurement triggers the burst's bit stream offers
            the iTDR (every cycle on a clock lane; pattern matches on a
            data lane).
        duration_s: Wire time of the burst.
        kind: Free-form label for the traffic type (``"ir-scan"``,
            ``"transaction"``, ``"read"``, ...), for inspection only.
    """

    n_bits: int
    n_triggers: int
    duration_s: float
    kind: str = "data"

    def __post_init__(self) -> None:
        if self.n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if self.n_triggers < 0:
            raise ValueError("n_triggers must be non-negative")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")


#: A traffic model: an explicit generator and a unit count in, a stream
#: of bursts out.  Taking the generator as the first positional argument
#: is part of the registry contract (pinned by the seeded-RNG test): no
#: protocol may consume unseeded randomness.
TrafficModel = Callable[[np.random.Generator, int], Iterable[TrafficBurst]]


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything one protected-link protocol contributes to the registry.

    Attributes:
        name: Registry key and the label stamped on every event the
            protocol's links emit (``"membus"``, ``"jtag"``, ...).
        title: Human-readable protocol name for docs and reports.
        cadence: Monitoring discipline — ``"periodic"`` for clock lanes
            (free-running trigger supply), ``"trigger-budget"`` for data
            lanes (traffic must bank the triggers).
        sides: Event-side labels in check order, e.g. ``("tx", "rx")``.
        endpoint_names: DIVOT endpoint names, parallel to ``sides``.
        bit_rate: Line (or clock) rate in bits per second; sizes the
            periodic cadence and converts bit counts to wire time.
        clock_lane: Whether the monitored conductor triggers every cycle
            (clock lanes) or only on the trigger pattern (data lanes).
        trigger_pattern: The FIFO bit pair that launches a probe edge on
            data lanes (section II-E); ignored for clock lanes.
        traffic: The seeded traffic model (see :data:`TrafficModel`).
        default_attack: Factory building the protocol's canonical attack
            scenario from the protected line (an
            :class:`~repro.attacks.base.Attack`).
        attack_label: One-line description of that scenario.
        captures_per_check: Default averaging depth per monitoring
            decision for links assembled from this spec.
        auth_threshold: Similarity floor the spec's authenticator
            accepts (the paper's prototype operating point by default).
            Per-protocol tuning lives here so every consumer — links,
            fleets, campaigns — reads one declarative source.
        tamper_threshold: Smoothed error-function ceiling the spec's
            tamper detector tolerates before raising an ALERT.
        tamper_smooth_window: Boxcar width (samples) of the detector's
            error-function smoothing for this protocol.
        line_seed: Default manufacturing seed when a link is built from
            the registry without an explicit line.
        default_units: Traffic units per default session, sized so a
            clean default session completes at least one scheduled check.
        description: Free-form notes for docs.
    """

    name: str
    title: str
    cadence: str
    sides: Tuple[str, ...]
    endpoint_names: Tuple[str, ...]
    bit_rate: float
    clock_lane: bool
    traffic: TrafficModel
    default_attack: Callable
    attack_label: str
    trigger_pattern: Tuple[int, int] = (1, 0)
    captures_per_check: int = 4
    auth_threshold: float = 0.85
    tamper_threshold: float = 2.5e-3
    tamper_smooth_window: int = 7
    line_seed: int = 0
    default_units: int = 64
    description: str = ""
    #: Dotted module that registered this spec (recorded by
    #: ``registry.register``); completeness checks key on it.
    provider: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
        if self.cadence not in CADENCE_KINDS:
            raise ValueError(
                f"cadence must be one of {CADENCE_KINDS}, "
                f"got {self.cadence!r}"
            )
        if not self.sides:
            raise ValueError("at least one side is required")
        if len(self.endpoint_names) != len(self.sides):
            raise ValueError("endpoint_names must parallel sides")
        if self.bit_rate <= 0:
            raise ValueError("bit_rate must be positive")
        if self.captures_per_check < 1:
            raise ValueError("captures_per_check must be >= 1")
        if not 0.0 < self.auth_threshold <= 1.0:
            raise ValueError("auth_threshold must be in (0, 1]")
        if self.tamper_threshold <= 0:
            raise ValueError("tamper_threshold must be positive")
        if self.tamper_smooth_window < 1:
            raise ValueError("tamper_smooth_window must be >= 1")
        if self.default_units < 1:
            raise ValueError("default_units must be >= 1")
        # Validates the pattern eagerly (same rules as the runtime
        # trigger generator), so a bad spec fails at registration.
        TriggerGenerator(pattern=self.trigger_pattern)

    # ------------------------------------------------------------------
    def authenticator(self):
        """The similarity policy this protocol's endpoints deploy."""
        from ..core.auth import Authenticator

        return Authenticator(self.auth_threshold)

    def tamper_detector(self, itdr):
        """This protocol's tamper policy, aligned to one iTDR's edge.

        Same construction as the prototype default, but thresholded and
        smoothed by the spec's own tuning — the per-protocol detector
        the registry promises.
        """
        from ..core.tamper import TamperDetector
        from ..txline.materials import FR4

        return TamperDetector(
            threshold=self.tamper_threshold,
            velocity=FR4.velocity_at(FR4.t_ref_c),
            smooth_window=self.tamper_smooth_window,
            alignment_offset_s=itdr.probe_edge().duration,
        )

    # ------------------------------------------------------------------
    def trigger_generator(self) -> TriggerGenerator:
        """The iTDR trigger extraction this protocol's lane uses."""
        return TriggerGenerator(
            pattern=self.trigger_pattern, clock_lane=self.clock_lane
        )

    def expected_trigger_rate(self) -> float:
        """Expected triggers per second at 100 % line utilisation."""
        return self.trigger_generator().expected_rate(self.bit_rate)

    def traffic_bursts(
        self,
        n_units: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> Iterable[TrafficBurst]:
        """A seeded traffic stream of ``n_units`` bursts.

        Exactly one source of randomness applies: an explicit ``rng``, an
        explicit ``seed``, or the registry-wide
        :data:`DEFAULT_TRAFFIC_SEED`.  Passing both is an error — silent
        precedence is how unseeded randomness sneaks in.
        """
        if rng is not None and seed is not None:
            raise ValueError("pass rng or seed, not both")
        if rng is None:
            rng = np.random.default_rng(
                DEFAULT_TRAFFIC_SEED if seed is None else seed
            )
        units = self.default_units if n_units is None else n_units
        if units < 1:
            raise ValueError("n_units must be >= 1")
        return self.traffic(rng, units)
