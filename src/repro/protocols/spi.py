"""SPI (mode 0) as a DIVOT-protected link.

The serial peripheral bus carries firmware, configuration bitstreams,
and secrets between a controller and its flash/peripheral — and a MISO
wiretap is the cheapest firmware-extraction attack there is: two probe
clips on an unpopulated header.  DIVOT endpoints at the controller and
peripheral authenticate the lane, so the parallel stub a tap hangs on
MISO disturbs the IIP the moment it is clipped.

Traffic is mode-0 framing: chip-select asserts, a command byte and a
data payload shift MSB-first on the data lane, chip-select deasserts.
The data lane has no free edge supply, so monitoring is traffic-fed
(:class:`~repro.core.runtime.TriggerBudgetCadence`): each check costs
triggers the passing transactions must bank — quiet buses genuinely
starve the monitor, exactly like the 8b/10b serial link.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..attacks.wiretap import WireTap
from ..core.trigger import TriggerGenerator
from .registry import register
from .spec import ProtocolSpec, TrafficBurst

__all__ = ["SCLK_RATE", "spi_transaction_bits", "spi_traffic", "SPI_SPEC"]

#: Default serial clock: 25 MHz, a common flash operating point.
SCLK_RATE = 25e6

#: Chip-select framing overhead in bit times (assert + deassert).
CS_OVERHEAD_BITS = 2


def spi_transaction_bits(
    rng: np.random.Generator, n_data_bytes: int
) -> np.ndarray:
    """The MOSI bit stream of one transaction: command + payload.

    Mode 0, MSB first — the wire order a logic analyser (or an iTDR
    trigger comparator) sees.  Bytes are drawn from the given generator,
    so identical seeds give identical wire bits.
    """
    if n_data_bytes < 1:
        raise ValueError("n_data_bytes must be >= 1")
    words = rng.integers(0, 256, size=1 + n_data_bytes, dtype=np.uint8)
    return np.unpackbits(words)


def spi_traffic(
    rng: np.random.Generator, n_units: int
) -> Iterator[TrafficBurst]:
    """A seeded controller session: command + payload transactions.

    Payload sizes span register pokes (8 bytes) to page-sized flash
    reads (32 bytes); triggers are (1, 0) pattern matches in the actual
    MOSI bit stream, so the trigger supply is a measured property of the
    traffic, not an assumed rate.
    """
    trigger = TriggerGenerator(pattern=(1, 0))
    for _ in range(n_units):
        n_data = int(rng.integers(8, 33))
        bits = spi_transaction_bits(rng, n_data)
        n_bits = len(bits) + CS_OVERHEAD_BITS
        yield TrafficBurst(
            n_bits=n_bits,
            n_triggers=trigger.count_triggers(bits),
            duration_s=n_bits / SCLK_RATE,
            kind="transaction",
        )


SPI_SPEC = register(
    ProtocolSpec(
        name="spi",
        title="SPI mode-0 controller/peripheral bus",
        cadence="trigger-budget",
        sides=("controller", "peripheral"),
        endpoint_names=("spi-ctrl", "spi-periph"),
        bit_rate=SCLK_RATE,
        clock_lane=False,
        traffic=spi_traffic,
        default_attack=lambda line: WireTap(position_m=0.12),
        attack_label="MISO wiretap (parallel stub clipped on the data lane)",
        captures_per_check=4,
        line_seed=81,
        default_units=2000,
        description=(
            "Mode-0 command+payload transactions at 25 MHz; the data "
            "lane banks (1,0) triggers like the 8b/10b serial link."
        ),
    )
)
