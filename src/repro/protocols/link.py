"""The generic DIVOT-protected link, assembled from a protocol spec.

One class replaces the per-workload assembly code the memory-bus and
serial-link applications used to duplicate: given a
:class:`~repro.protocols.spec.ProtocolSpec`, :class:`ProtectedLink`
builds the DIVOT endpoint per side, the workload-lifetime
:class:`~repro.core.runtime.Telemetry`, and the cadence arithmetic, and
drives per-session :class:`~repro.core.runtime.MonitorRuntime` instances
whose events carry the protocol label.  Applications with bespoke
traffic loops (the memory controller, the framed serial link) keep their
loops and delegate assembly and checking here; protocols without one
(JTAG, SPI, I2C) get a complete :meth:`session` /
:meth:`attack_session` driver for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..attacks.base import AttackTimeline
from ..core.auth import Authenticator
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.divot import DivotEndpoint
from ..core.itdr import ITDR
from ..core.runtime import (
    Cadence,
    EventLog,
    MonitorEvent,
    MonitorRuntime,
    PeriodicCadence,
    Telemetry,
    TriggerBudgetCadence,
)
from ..core.tamper import TamperDetector
from ..txline.line import TransmissionLine
from ..txline.materials import FR4
from .spec import ProtocolSpec, TrafficBurst

__all__ = ["LinkSessionResult", "ProtectedLink", "default_tamper_detector"]


def default_tamper_detector(itdr: ITDR) -> TamperDetector:
    """The standard FR4 tamper policy, aligned to this iTDR's probe edge."""
    return TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )


@dataclass
class LinkSessionResult:
    """Everything one generic protected session produced.

    Events live in a canonical :class:`~repro.core.runtime.EventLog`;
    the alert/latency queries delegate to it, so they mean the same
    thing as on every other workload.  ``checks_run`` and
    ``triggers_consumed`` come from the cadence's accounting.
    """

    log: EventLog = field(default_factory=EventLog)
    duration_s: float = 0.0
    checks_run: int = 0
    triggers_consumed: int = 0
    units_sent: int = 0

    @property
    def events(self) -> List[MonitorEvent]:
        """The raw monitoring events in time order."""
        return self.log.events

    def alerts(self) -> List[MonitorEvent]:
        """Non-PROCEED events in time order."""
        return self.log.alerts()

    def first_alert_time(self) -> Optional[float]:
        """Time of the first BLOCK/ALERT, or None for a clean session."""
        return self.log.first_alert_time()

    def detection_latency(self, onset_s: float) -> Optional[float]:
        """Time from attack onset to the first alert at/after it."""
        return self.log.detection_latency(onset_s)


class ProtectedLink:
    """A DIVOT-protected bus of any registered protocol.

    Args:
        spec: The protocol's declarative spec.
        line: The physical conductor under protection.
        itdrs: One measurement engine per spec side, in side order.
        authenticator / tamper_detector: Shared decision policies.
        captures_per_check: Averaging depth per monitoring decision
            (defaults to the spec's).
        trigger_rate: Trigger supply rate for periodic cadence sizing;
            defaults to the spec's line rate (clock lanes trigger every
            cycle).  Applications whose clock differs from the spec
            default (e.g. a down-clocked memory bus) override it.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        line: TransmissionLine,
        itdrs: Sequence[ITDR],
        authenticator: Authenticator,
        tamper_detector: TamperDetector,
        captures_per_check: Optional[int] = None,
        trigger_rate: Optional[float] = None,
    ) -> None:
        itdrs = tuple(itdrs)
        if len(itdrs) != len(spec.sides):
            raise ValueError(
                f"{spec.name} needs {len(spec.sides)} iTDRs "
                f"(sides {spec.sides}), got {len(itdrs)}"
            )
        self.spec = spec
        self.line = line
        self.captures_per_check = (
            spec.captures_per_check
            if captures_per_check is None
            else captures_per_check
        )
        self.endpoints: Dict[str, DivotEndpoint] = {}
        for side, name, itdr in zip(spec.sides, spec.endpoint_names, itdrs):
            self.endpoints[side] = DivotEndpoint(
                name,
                itdr,
                authenticator,
                tamper_detector,
                captures_per_check=self.captures_per_check,
            )
        #: Workload-lifetime telemetry; every session folds into it.
        self.telemetry = Telemetry()
        # Cadence arithmetic is sized once from the first side's engine
        # (the engines share a configuration); sessions get fresh cadence
        # instances so accounting never leaks across runs.
        sizing = itdrs[0]
        if spec.cadence == "periodic":
            rate = (
                trigger_rate
                if trigger_rate is not None
                else spec.expected_trigger_rate()
            )
            template = PeriodicCadence.from_budget(
                sizing, line, self.captures_per_check, trigger_rate=rate
            )
            #: Fixed time between scheduled checks (periodic cadence).
            self.check_period_s: Optional[float] = template.period_s
        else:
            template = TriggerBudgetCadence.from_budget(
                sizing, line, self.captures_per_check
            )
            # A data lane's period is traffic-dependent; the bound at
            # 100 % utilisation is cost / expected rate.
            self.check_period_s = None
        #: Triggers one monitoring check consumes.
        self.check_cost_triggers: int = template.cost_triggers

    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        name: str,
        line: Optional[TransmissionLine] = None,
        seed: int = 0,
        authenticator: Optional[Authenticator] = None,
        tamper_detector: Optional[TamperDetector] = None,
        captures_per_check: Optional[int] = None,
    ) -> "ProtectedLink":
        """A ready-to-calibrate link for a registered protocol.

        Every stochastic element descends from ``seed`` through one
        ``SeedSequence`` (one child per side's iTDR); the line defaults
        to the prototype manufacturing model at the spec's line seed.
        """
        from .registry import get

        spec = get(name)
        if line is None:
            line = prototype_line_factory().manufacture(
                seed=spec.line_seed, name=f"{spec.name}-lane"
            )
        children = np.random.SeedSequence(seed).spawn(len(spec.sides))
        itdrs = [
            prototype_itdr(rng=np.random.default_rng(child))
            for child in children
        ]
        # Decision policies come from the spec's own tuning — identical
        # to the historical shared prototype values unless a spec
        # declares otherwise.
        if authenticator is None:
            authenticator = spec.authenticator()
        if tamper_detector is None:
            tamper_detector = spec.tamper_detector(itdrs[0])
        return cls(
            spec,
            line,
            itdrs,
            authenticator,
            tamper_detector,
            captures_per_check=captures_per_check,
        )

    # ------------------------------------------------------------------
    def endpoint(self, side: str) -> DivotEndpoint:
        """The DIVOT endpoint at one side of the link."""
        return self.endpoints[side]

    def calibrate(self, n_captures: int = 8) -> None:
        """Pair every endpoint with the line (installation-time step)."""
        for side in self.spec.sides:
            self.endpoints[side].calibrate(self.line, n_captures=n_captures)

    def sustained_check_period_s(self) -> float:
        """Time between checks at 100 % line utilisation.

        The periodic cadence's fixed period, or — for traffic-fed lanes —
        one check's trigger cost at the lane's expected trigger rate.
        The detection-latency bound a fully-utilised link sustains.
        """
        if self.check_period_s is not None:
            return self.check_period_s
        return self.check_cost_triggers / self.spec.expected_trigger_rate()

    # ------------------------------------------------------------------
    def new_cadence(self) -> Cadence:
        """A fresh per-session cadence with this link's sizing."""
        if self.spec.cadence == "periodic":
            return PeriodicCadence(
                self.check_period_s, cost_triggers=self.check_cost_triggers
            )
        return TriggerBudgetCadence(self.check_cost_triggers)

    def new_runtime(self) -> MonitorRuntime:
        """A fresh per-session runtime sharing the workload telemetry."""
        return MonitorRuntime(self.new_cadence(), telemetry=self.telemetry)

    def check(
        self,
        runtime: MonitorRuntime,
        t: float,
        timeline: Optional[AttackTimeline] = None,
        lines_by_side: Optional[Dict[str, Sequence]] = None,
    ) -> None:
        """One concurrent multi-way check: every side, in spec order.

        ``lines_by_side`` lets an application substitute a side's lane
        bundle (fused extra lanes, a cold-boot foreign line); sides not
        named measure the protected line itself.
        """
        for side in self.spec.sides:
            lines = [self.line]
            if lines_by_side is not None and side in lines_by_side:
                lines = list(lines_by_side[side])
            runtime.check(
                self.endpoints[side],
                t,
                lines,
                timeline=timeline,
                side=side,
                protocol=self.spec.name,
            )

    # ------------------------------------------------------------------
    def session(
        self,
        n_units: Optional[int] = None,
        timeline: Optional[AttackTimeline] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        bursts: Optional[Iterable[TrafficBurst]] = None,
    ) -> LinkSessionResult:
        """One protected traffic session driven by the spec's model.

        Bursts play back to back; the cadence decides when checks
        complete (clock lanes on the period, data lanes whenever the
        banked trigger pool affords one), every check measuring all
        sides under whatever the timeline has active.  Sessions under an
        attack that stayed undetected get one final forced check at the
        session end — routed through the cadence so it is never free.
        """
        if bursts is None:
            bursts = self.spec.traffic_bursts(n_units, rng=rng, seed=seed)
        runtime = self.new_runtime()
        cadence = runtime.cadence
        feed = isinstance(cadence, TriggerBudgetCadence)
        result = LinkSessionResult(log=runtime.log)
        t = 0.0
        for burst in bursts:
            t += burst.duration_s
            result.units_sent += 1
            if feed:
                cadence.feed(burst.n_triggers)
            for due in cadence.due(t):
                self.check(runtime, due, timeline)
        result.duration_s = t
        if timeline is not None and not result.alerts():
            self.check(runtime, cadence.force(t), timeline)
        runtime.finish()
        result.checks_run = cadence.checks_run
        result.triggers_consumed = cadence.triggers_consumed
        return result

    def attack_session(
        self,
        n_units: Optional[int] = None,
        onset_s: float = 0.0,
        attack=None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> Tuple[LinkSessionResult, AttackTimeline]:
        """A session under the spec's canonical attack scenario.

        The attack (default: the spec's ``default_attack`` built for
        this link's line) lands at ``onset_s`` and stays active; the
        returned timeline gives detection-latency queries their onset.
        """
        if attack is None:
            attack = self.spec.default_attack(self.line)
        timeline = AttackTimeline().add(attack, start_s=onset_s)
        result = self.session(
            n_units=n_units, timeline=timeline, rng=rng, seed=seed
        )
        return result, timeline
