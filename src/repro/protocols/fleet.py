"""Mixed-protocol fleets: the whole registry on the sharded executor.

One deployment rarely protects a single bus kind — a board has a memory
bus, a debug header, a flash SPI lane, and a management I2C bus at the
same time.  :func:`build_protocol_fleet` registers lines for any subset
of the registry on one :class:`~repro.core.fleet.FleetScanExecutor`,
each carrying its protocol label, so a single sharded scan protects the
whole zoo: per-protocol cells land in ``Telemetry.snapshot()``, fault
recovery and 1:N identification apply unchanged, and byte-identity
across shard counts holds because labels are registration metadata,
never measurement input.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.auth import Authenticator
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.fleet import FleetScanExecutor
from ..core.tamper import TamperDetector
from ..txline.materials import FR4
from . import registry
from .link import default_tamper_detector

__all__ = ["build_protocol_fleet", "default_attacks_by_bus"]


def build_protocol_fleet(
    protocols: Optional[Sequence[str]] = None,
    buses_per_protocol: int = 1,
    first_seed: int = 500,
    seed: int = 0,
    shards: int = 1,
    backend: str = "auto",
    transport: str = "auto",
    captures_per_check: Optional[int] = None,
    authenticator: Optional[Authenticator] = None,
    tamper_detector: Optional[TamperDetector] = None,
    retry_policy=None,
    fault_injector=None,
) -> FleetScanExecutor:
    """A sharded executor protecting buses of every named protocol.

    Args:
        protocols: Registry names to deploy (default: the whole
            registry, sorted).
        buses_per_protocol: Fleet width per protocol; lines manufacture
            from consecutive seeds starting at ``first_seed`` and are
            named ``<protocol>-<k>``.
        seed / shards / backend / transport / captures_per_check /
            retry_policy / fault_injector: Forwarded to the executor.

    Decision policies default to the *specs' own* tuning when every
    selected spec agrees (one executor ships one policy set to its
    shards); a mixed-tuning selection must pass explicit policies —
    or run per-protocol executors, which is what
    :class:`~repro.campaigns.engine.Campaign` does.
    """
    if buses_per_protocol < 1:
        raise ValueError("buses_per_protocol must be >= 1")
    specs = [registry.get(name) for name in (
        protocols if protocols is not None else registry.load_all()
    )]

    def consensus(label, values, fallback):
        distinct = sorted(set(values))
        if len(distinct) > 1:
            raise ValueError(
                f"selected specs disagree on {label} ({distinct}); pass "
                "an explicit policy or use per-protocol executors"
            )
        return distinct[0] if distinct else fallback

    if captures_per_check is None:
        captures_per_check = consensus(
            "captures_per_check",
            [s.captures_per_check for s in specs], 4,
        )
    if authenticator is None:
        authenticator = Authenticator(consensus(
            "auth_threshold", [s.auth_threshold for s in specs], 0.85,
        ))
    if tamper_detector is None:
        itdr = prototype_itdr()
        if specs:
            threshold = consensus(
                "tamper_threshold", [s.tamper_threshold for s in specs],
                None,
            )
            window = consensus(
                "tamper_smooth_window",
                [s.tamper_smooth_window for s in specs], None,
            )
            tamper_detector = TamperDetector(
                threshold=threshold,
                velocity=FR4.velocity_at(FR4.t_ref_c),
                smooth_window=window,
                alignment_offset_s=itdr.probe_edge().duration,
            )
        else:
            tamper_detector = default_tamper_detector(itdr)
    executor = FleetScanExecutor(
        authenticator,
        tamper_detector,
        captures_per_check=captures_per_check,
        shards=shards,
        backend=backend,
        transport=transport,
        seed=seed,
        retry_policy=retry_policy,
        fault_injector=fault_injector,
    )
    factory = prototype_line_factory()
    line_seed = first_seed
    for spec in specs:
        for k in range(buses_per_protocol):
            line = factory.manufacture(
                seed=line_seed, name=f"{spec.name}-{k}"
            )
            executor.register(line, protocol=spec.name)
            line_seed += 1
    return executor


def default_attacks_by_bus(
    executor: FleetScanExecutor,
    protocols: Optional[Sequence[str]] = None,
    per_protocol_limit: int = 1,
) -> Dict[str, List]:
    """Each protocol's canonical attack, placed on its fleet buses.

    Builds a ``modifiers_by_bus`` mapping for
    :meth:`~repro.core.fleet.FleetScanExecutor.scan`: the first
    ``per_protocol_limit`` buses of every (selected) protocol get that
    protocol's registry-default attack on their own line.
    """
    if per_protocol_limit < 1:
        raise ValueError("per_protocol_limit must be >= 1")
    wanted = None if protocols is None else set(protocols)
    placed: Dict[str, int] = {}
    modifiers: Dict[str, List] = {}
    for name, protocol in executor.bus_protocols().items():
        if protocol is None or (wanted is not None and protocol not in wanted):
            continue
        if placed.get(protocol, 0) >= per_protocol_limit:
            continue
        spec = registry.get(protocol)
        modifiers[name] = [spec.default_attack(None)]
        placed[protocol] = placed.get(protocol, 0) + 1
    return modifiers
