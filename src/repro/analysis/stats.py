"""Statistics helpers for authentication-performance claims.

EER point estimates from finite samples wobble; these helpers put numbers
on that wobble (bootstrap confidence intervals) and provide the standard
biometric separation metrics (d-prime, distribution overlap) plus DET
curve points for log-scale error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.auth import equal_error_rate

__all__ = [
    "d_prime",
    "overlap_coefficient",
    "bootstrap_eer",
    "det_points",
    "BootstrapResult",
]


def d_prime(genuine: np.ndarray, impostor: np.ndarray) -> float:
    """The biometric separation index (mean gap over pooled spread)."""
    genuine = np.asarray(genuine, dtype=float)
    impostor = np.asarray(impostor, dtype=float)
    if len(genuine) < 2 or len(impostor) < 2:
        raise ValueError("need at least 2 scores per class")
    pooled = np.sqrt((genuine.var() + impostor.var()) / 2.0)
    if pooled == 0:
        return float("inf")
    return float((genuine.mean() - impostor.mean()) / pooled)


def overlap_coefficient(
    genuine: np.ndarray, impostor: np.ndarray, n_bins: int = 200
) -> float:
    """Shared area of the two score distributions, in [0, 1].

    0 means perfectly separated; 1 means identical.  Histogram-based; the
    bin count trades resolution against small-sample noise.
    """
    genuine = np.asarray(genuine, dtype=float)
    impostor = np.asarray(impostor, dtype=float)
    if len(genuine) == 0 or len(impostor) == 0:
        raise ValueError("both score sets must be non-empty")
    lo = min(genuine.min(), impostor.min())
    hi = max(genuine.max(), impostor.max())
    if lo == hi:
        return 1.0
    edges = np.linspace(lo, hi, n_bins + 1)
    g, _ = np.histogram(genuine, bins=edges, density=False)
    i, _ = np.histogram(impostor, bins=edges, density=False)
    g = g / g.sum()
    i = i / i.sum()
    return float(np.minimum(g, i).sum())


@dataclass(frozen=True)
class BootstrapResult:
    """A bootstrap estimate with its confidence interval."""

    point: float
    low: float
    high: float
    n_resamples: int
    confidence: float


def bootstrap_eer(
    genuine: np.ndarray,
    impostor: np.ndarray,
    n_resamples: int = 200,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapResult:
    """Percentile-bootstrap confidence interval on the EER."""
    if not 0.5 < confidence < 1.0:
        raise ValueError("confidence must be in (0.5, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")
    genuine = np.asarray(genuine, dtype=float)
    impostor = np.asarray(impostor, dtype=float)
    rng = rng if rng is not None else np.random.default_rng()
    point, _ = equal_error_rate(genuine, impostor)
    estimates = np.empty(n_resamples)
    for k in range(n_resamples):
        g = rng.choice(genuine, size=len(genuine), replace=True)
        i = rng.choice(impostor, size=len(impostor), replace=True)
        estimates[k], _ = equal_error_rate(g, i)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        point=point,
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        n_resamples=n_resamples,
        confidence=confidence,
    )


def det_points(
    genuine: np.ndarray,
    impostor: np.ndarray,
    fpr_targets: Tuple[float, ...] = (1e-4, 1e-3, 1e-2, 1e-1),
) -> list:
    """(FPR target, achieved FNR) pairs — the DET curve at log anchors.

    For each target false-positive rate, the threshold is the matching
    impostor quantile and the reported value is the genuine miss rate
    there.
    """
    genuine = np.sort(np.asarray(genuine, dtype=float))
    impostor = np.asarray(impostor, dtype=float)
    if len(genuine) == 0 or len(impostor) == 0:
        raise ValueError("both score sets must be non-empty")
    points = []
    for target in fpr_targets:
        if not 0 < target < 1:
            raise ValueError("FPR targets must be in (0, 1)")
        threshold = float(np.quantile(impostor, 1.0 - target))
        fnr = float(np.searchsorted(genuine, threshold, side="left")) / len(
            genuine
        )
        points.append((target, fnr))
    return points
