"""Data export: getting waveforms and scores out of the simulator.

Downstream users plot IIPs and score distributions in their own tools;
these helpers write the standard interchange forms — CSV for waveforms and
score sets, JSON for capture bundles — with enough metadata to reconstruct
axes (time grids, distance conversion) without the library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from ..core.itdr import IIPCapture
from ..signals.waveform import Waveform

__all__ = [
    "waveform_to_csv",
    "scores_to_csv",
    "capture_to_json",
    "capture_from_json",
]

PathLike = Union[str, Path]


def waveform_to_csv(
    waveform: Waveform,
    path: PathLike,
    velocity: Optional[float] = None,
) -> Path:
    """Write a waveform as ``time_s[,distance_m],voltage`` rows.

    ``velocity`` adds the round-trip distance column (``v * t / 2``) TDR
    plots are usually drawn against.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["time_s"]
        if velocity is not None:
            if velocity <= 0:
                raise ValueError("velocity must be positive")
            header.append("distance_m")
        header.append("voltage")
        writer.writerow(header)
        for t, v in zip(waveform.times, waveform.samples):
            row = [f"{t:.6e}"]
            if velocity is not None:
                row.append(f"{velocity * t / 2.0:.6e}")
            row.append(f"{v:.9e}")
            writer.writerow(row)
    return path


def scores_to_csv(
    genuine: Sequence[float],
    impostor: Sequence[float],
    path: PathLike,
) -> Path:
    """Write labelled similarity scores as ``label,score`` rows."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", "score"])
        for score in genuine:
            writer.writerow(["genuine", f"{float(score):.9f}"])
        for score in impostor:
            writer.writerow(["impostor", f"{float(score):.9f}"])
    return path


def capture_to_json(capture: IIPCapture, path: PathLike) -> Path:
    """Serialise a capture (waveform + metadata) to JSON."""
    path = Path(path)
    payload = {
        "line_name": capture.line_name,
        "n_triggers": capture.n_triggers,
        "duration_s": capture.duration_s,
        "dt": capture.waveform.dt,
        "t0": capture.waveform.t0,
        "samples": capture.waveform.samples.tolist(),
    }
    path.write_text(json.dumps(payload))
    return path


def capture_from_json(path: PathLike) -> IIPCapture:
    """Rebuild a capture written by :func:`capture_to_json`."""
    payload = json.loads(Path(path).read_text())
    return IIPCapture(
        waveform=Waveform(
            np.asarray(payload["samples"], dtype=float),
            dt=float(payload["dt"]),
            t0=float(payload["t0"]),
        ),
        line_name=payload["line_name"],
        n_triggers=int(payload["n_triggers"]),
        duration_s=float(payload["duration_s"]),
    )
