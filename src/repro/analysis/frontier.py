"""ROC sweeps and detection-latency frontiers for adversary campaigns.

A campaign produces two sample sets per (protocol, strategy) arm: the
*suspicion statistic* the detector computed on clean rounds and the same
statistic on attacked rounds (peak smoothed error for tamper-channel
attacks, ``1 - similarity`` for authentication-channel attacks — in both
conventions larger means more suspicious).  Sweeping the decision
threshold over the pooled sample values yields the full ROC curve; the
same sweep against the attacked rounds *in round order* yields the
detection-latency frontier — how many adaptive rounds the adversary
survives at each tolerated false-alarm rate.  Both are exact empirical
curves (no binning, no interpolation), so their points are reproducible
byte-for-byte at a fixed campaign seed and are safe to pin in
regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "RocPoint",
    "LatencyPoint",
    "roc_sweep",
    "roc_auc",
    "operating_point",
    "detection_latency_frontier",
    "pareto_front",
]


@dataclass(frozen=True)
class RocPoint:
    """One operating point of a detector threshold sweep.

    Attributes:
        threshold: Decision level on the suspicion statistic; a round is
            flagged when its statistic is >= the threshold.
        fpr: Fraction of clean rounds flagged at this threshold.
        tpr: Fraction of attacked rounds flagged at this threshold.
    """

    threshold: float
    fpr: float
    tpr: float


@dataclass(frozen=True)
class LatencyPoint:
    """One point of the false-alarm-rate / time-to-detect trade.

    Attributes:
        threshold: Decision level on the suspicion statistic.
        fpr: Clean-round false-alarm rate at this threshold.
        rounds_to_detect: 1-based index of the first attacked round the
            detector flags, or None when the whole campaign evades this
            threshold.
    """

    threshold: float
    fpr: float
    rounds_to_detect: Optional[int]

    @property
    def detected(self) -> bool:
        """Whether the campaign was caught at all at this threshold."""
        return self.rounds_to_detect is not None


def _statistics(values: Sequence[float], label: str) -> np.ndarray:
    arr = np.asarray(list(values), dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{label} must be a non-empty 1-D sample set")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{label} must be finite")
    return arr


def _sweep_thresholds(
    clean: np.ndarray, attack: np.ndarray
) -> np.ndarray:
    """Every decision level that changes the empirical error rates.

    The pooled unique sample values — sweeping between two adjacent
    values cannot move either rate — plus one level strictly above the
    pooled maximum, so the (fpr=0, tpr=0) corner is always present.
    """
    pooled = np.unique(np.concatenate([clean, attack]))
    top = pooled[-1] + max(1.0, abs(pooled[-1])) * 1e-9 + 1e-300
    return np.concatenate([pooled, [top]])


def roc_sweep(
    clean: Sequence[float],
    attack: Sequence[float],
    thresholds: Optional[Sequence[float]] = None,
) -> List[RocPoint]:
    """The exact empirical ROC curve of a suspicion statistic.

    Points come back in increasing-threshold order (decreasing FPR);
    both endpoints are included: the lowest pooled value flags
    everything (fpr = tpr = 1) and the synthetic top threshold flags
    nothing.
    """
    clean_arr = _statistics(clean, "clean")
    attack_arr = _statistics(attack, "attack")
    if thresholds is None:
        levels = _sweep_thresholds(clean_arr, attack_arr)
    else:
        levels = np.asarray(list(thresholds), dtype=float)
        if levels.ndim != 1 or levels.size == 0:
            raise ValueError("thresholds must be non-empty 1-D")
        levels = np.sort(levels)
    clean_sorted = np.sort(clean_arr)
    attack_sorted = np.sort(attack_arr)
    n_clean = clean_sorted.size
    n_attack = attack_sorted.size
    fpr = 1.0 - np.searchsorted(clean_sorted, levels, side="left") / n_clean
    tpr = 1.0 - np.searchsorted(attack_sorted, levels, side="left") / n_attack
    return [
        RocPoint(threshold=float(t), fpr=float(f), tpr=float(p))
        for t, f, p in zip(levels, fpr, tpr)
    ]


def roc_auc(points: Sequence[RocPoint]) -> float:
    """Trapezoidal area under an ROC point list (0.5 = chance)."""
    if not points:
        raise ValueError("need at least one ROC point")
    fpr = np.array([p.fpr for p in points], dtype=float)
    tpr = np.array([p.tpr for p in points], dtype=float)
    # Sort by (fpr, tpr): ties on the FPR axis are vertical risers of
    # the empirical staircase, and integrating must leave each riser
    # from its top, not from whichever tied point happened to sort last.
    order = np.lexsort((tpr, fpr))
    fpr, tpr = fpr[order], tpr[order]
    # Anchor both ends so a sweep that never reaches a corner still
    # integrates over the full FPR axis.
    fpr = np.concatenate([[0.0], fpr, [1.0]])
    tpr = np.concatenate([[tpr[0]], tpr, [tpr[-1]]])
    return float(np.trapezoid(tpr, fpr))


def operating_point(
    points: Sequence[RocPoint], max_fpr: float
) -> RocPoint:
    """The best-TPR point whose false-positive rate fits the budget.

    The deployment question every campaign table answers: "allowing at
    most this false-alarm rate, what fraction of attack rounds does the
    detector catch?"  Raises when no point fits (only possible with an
    explicit threshold grid — default sweeps always include fpr = 0).
    """
    if not 0.0 <= max_fpr <= 1.0:
        raise ValueError("max_fpr must be in [0, 1]")
    eligible = [p for p in points if p.fpr <= max_fpr]
    if not eligible:
        raise ValueError(f"no operating point with fpr <= {max_fpr}")
    return max(eligible, key=lambda p: (p.tpr, -p.fpr, -p.threshold))


def detection_latency_frontier(
    clean: Sequence[float],
    attack_by_round: Sequence[float],
    thresholds: Optional[Sequence[float]] = None,
) -> List[LatencyPoint]:
    """False-alarm rate versus rounds-until-detection, per threshold.

    ``attack_by_round`` is the suspicion statistic of each attacked
    round *in campaign order* — for an adaptive adversary the sequence
    typically decays, which is exactly what this frontier exposes: a
    strict threshold catches round one; a lax one may never fire again
    once the adversary has tuned itself below it.
    """
    clean_arr = _statistics(clean, "clean")
    attack_arr = _statistics(attack_by_round, "attack_by_round")
    if thresholds is None:
        levels = _sweep_thresholds(clean_arr, attack_arr)
    else:
        levels = np.sort(np.asarray(list(thresholds), dtype=float))
    clean_sorted = np.sort(clean_arr)
    n_clean = clean_sorted.size
    points = []
    for level in levels:
        fpr = 1.0 - float(
            np.searchsorted(clean_sorted, level, side="left")
        ) / n_clean
        hits = np.nonzero(attack_arr >= level)[0]
        rounds = int(hits[0]) + 1 if hits.size else None
        points.append(
            LatencyPoint(
                threshold=float(level), fpr=fpr, rounds_to_detect=rounds
            )
        )
    return points


def pareto_front(points: Sequence[LatencyPoint]) -> List[LatencyPoint]:
    """The undominated subset of a latency frontier.

    A point dominates another when it is no worse on both axes (false
    alarms and time-to-detect) and strictly better on one; undetected
    points count as infinite latency.  Returned in increasing-FPR
    order — the curve an operator actually chooses from.
    """

    def latency(p: LatencyPoint) -> float:
        return float("inf") if p.rounds_to_detect is None else p.rounds_to_detect

    ordered = sorted(points, key=lambda p: (p.fpr, latency(p)))
    front: List[LatencyPoint] = []
    best = float("inf")
    for point in ordered:
        lat = latency(point)
        if lat < best:
            front.append(point)
            best = lat
    return front
