"""Reporting and statistics helpers shared by the experiment harness."""

from .export import (
    capture_from_json,
    capture_to_json,
    scores_to_csv,
    waveform_to_csv,
)
from .report import format_histogram, format_series, format_table
from .stats import (
    BootstrapResult,
    bootstrap_eer,
    d_prime,
    det_points,
    overlap_coefficient,
)

__all__ = [
    "format_table",
    "format_histogram",
    "format_series",
    "d_prime",
    "overlap_coefficient",
    "bootstrap_eer",
    "BootstrapResult",
    "det_points",
    "waveform_to_csv",
    "scores_to_csv",
    "capture_to_json",
    "capture_from_json",
]
