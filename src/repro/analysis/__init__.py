"""Reporting and statistics helpers shared by the experiment harness."""

from .export import (
    capture_from_json,
    capture_to_json,
    scores_to_csv,
    waveform_to_csv,
)
from .frontier import (
    LatencyPoint,
    RocPoint,
    detection_latency_frontier,
    operating_point,
    pareto_front,
    roc_auc,
    roc_sweep,
)
from .report import format_histogram, format_series, format_table
from .stats import (
    BootstrapResult,
    bootstrap_eer,
    d_prime,
    det_points,
    overlap_coefficient,
)

__all__ = [
    "format_table",
    "format_histogram",
    "format_series",
    "d_prime",
    "overlap_coefficient",
    "bootstrap_eer",
    "BootstrapResult",
    "det_points",
    "RocPoint",
    "LatencyPoint",
    "roc_sweep",
    "roc_auc",
    "operating_point",
    "detection_latency_frontier",
    "pareto_front",
    "waveform_to_csv",
    "scores_to_csv",
    "capture_to_json",
    "capture_from_json",
]
