"""Plain-text report formatting shared by the experiment harness.

Every experiment prints the rows/series the paper reports; these helpers
keep that output aligned and consistent without pulling in plotting
dependencies.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_histogram", "format_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_histogram(
    values, n_bins: int = 30, width: int = 50, title: str = ""
) -> str:
    """Render a one-line-per-bin ASCII histogram of a score distribution."""
    import numpy as np

    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        return f"{title}\n(empty)"
    counts, edges = np.histogram(values, bins=n_bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  [{lo:8.4f}, {hi:8.4f})  {count:7d} {bar}")
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence, ys: Sequence, x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an (x, y) series as aligned value pairs."""
    rows: List[List] = [[x, y] for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name)
