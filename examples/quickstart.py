"""Quickstart: fingerprint a bus and authenticate it in ~30 lines.

Manufactures a handful of Tx-lines (same nominal design, different physical
fingerprints), enrolls one of them with a DIVOT iTDR, and shows the central
property of the paper: fresh measurements of the enrolled line score near 1
against its stored fingerprint, while every other line scores far below.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    Fingerprint,
    capture_similarity,
    equal_error_rate,
    prototype_itdr,
    prototype_line_factory,
)


def main() -> None:
    # Six 25 cm PCB traces, like the paper's custom test board.
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(6)
    enrolled = lines[0]

    # The iTDR: comparator + PDM + ETS at the prototype operating point.
    itdr = prototype_itdr(rng=np.random.default_rng(42))

    # Calibration: measure the bus several times and store the average.
    fingerprint = Fingerprint.from_captures(
        [itdr.capture(enrolled) for _ in range(16)]
    )
    print(f"enrolled {fingerprint.name!r}: "
          f"{len(fingerprint.samples)} IIP points on an "
          f"{itdr.pll.equivalent_sample_rate / 1e9:.0f} GSa/s equivalent grid")

    # Monitoring: authenticate every line against the stored fingerprint.
    print("\nline        similarity   verdict")
    print("-" * 38)
    for line in lines:
        capture = itdr.capture(line)
        score = capture_similarity(capture, fingerprint)
        verdict = "GENUINE" if line is enrolled else "impostor"
        print(f"{line.name:<10}  {score:10.4f}   {verdict}")

    # A quick EER estimate over repeated measurements.
    genuine = np.array(
        [
            capture_similarity(itdr.capture(enrolled), fingerprint)
            for _ in range(200)
        ]
    )
    impostor = np.array(
        [
            capture_similarity(itdr.capture(line), fingerprint)
            for line in lines[1:]
            for _ in range(50)
        ]
    )
    eer, threshold = equal_error_rate(genuine, impostor)
    print(f"\nEER over {len(genuine)} genuine / {len(impostor)} impostor "
          f"measurements: {eer:.4%} (threshold {threshold:.4f})")
    print("paper: EER < 0.06% at room temperature")

    # One capture's cost — the paper's 50 us headline.
    cap = itdr.capture(enrolled)
    print(f"\none capture: {cap.n_triggers} probe edges, "
          f"{cap.duration_s * 1e6:.1f} us at "
          f"{itdr.config.clock_frequency / 1e6:.2f} MHz")


if __name__ == "__main__":
    main()
