"""Tamper forensics: detect, classify, and locate physical attacks.

Walks the paper's Fig. 9 studies on one populated line: magnetic probing
(the quietest signature), a capacitive snoop, a wire-tap (and the permanent
scar it leaves), and a same-model-number chip swap.  For each, prints the
error-function peak, the calibrated verdict, and an ASCII rendering of
E_xy over distance — the "divot" the architecture is named for.

Run:  python examples/tamper_forensics.py
"""

import numpy as np

from repro.attacks import CapacitiveSnoop, ChipSwap, MagneticProbe, WireTap
from repro.core import (
    Fingerprint,
    TamperDetector,
    calibrate_threshold,
    prototype_itdr,
    prototype_line_factory,
)
from repro.txline.materials import FR4

AVERAGING = 256
VELOCITY = FR4.velocity_at(FR4.t_ref_c)


def ascii_profile(detector, capture, reference, width=60, rows=8) -> str:
    """Render the smoothed error function as an ASCII bar strip."""
    profile = detector.error_profile(capture, reference)
    e = profile.samples
    bins = np.array_split(e, width)
    heights = np.array([b.max() for b in bins])
    top = heights.max() if heights.max() > 0 else 1.0
    lines = []
    for level in range(rows, 0, -1):
        row = "".join(
            "#" if h >= top * level / rows else " " for h in heights
        )
        lines.append("|" + row + "|")
    distance_cm = len(e) * profile.dt * VELOCITY / 2 * 100
    lines.append("+" + "-" * width + "+")
    lines.append(f"0 cm{'':<{width - 12}}{distance_cm:.0f} cm (round trip)")
    return "\n".join(lines)


def main() -> None:
    factory = prototype_line_factory(attach_receiver=True)
    line = factory.manufacture(seed=1)
    itdr = prototype_itdr(rng=np.random.default_rng(0))

    print("enrolling the clean line "
          f"({AVERAGING} averaged captures, like the paper's 8192-"
          "measurement IIPs)...")
    reference = Fingerprint.from_captures(
        [itdr.capture(line) for _ in range(AVERAGING)]
    )
    detector = TamperDetector(
        threshold=1.0,
        velocity=VELOCITY,
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )

    # Calibrate the threshold between ambient noise and the quietest attack,
    # exactly as the paper does with its 5e-7 figure.
    clean_peaks = [
        detector.error_profile(
            itdr.capture_averaged(line, AVERAGING), reference
        ).samples.max()
        for _ in range(6)
    ]
    probe_cap = itdr.capture_averaged(
        line, AVERAGING, modifiers=[MagneticProbe(0.12)]
    )
    probe_peak = detector.error_profile(probe_cap, reference).samples.max()
    threshold = calibrate_threshold(np.array(clean_peaks), np.array([probe_peak]))
    detector = TamperDetector(
        threshold=threshold,
        velocity=VELOCITY,
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )
    print(f"clean noise floor : {max(clean_peaks):.2e}")
    print(f"threshold         : {threshold:.2e} "
          "(calibrated on the magnetic probe, the quietest attack)\n")

    studies = [
        ("magnetic probe at 12 cm (non-contact!)", MagneticProbe(0.12)),
        ("capacitive snooping pod at 12 cm", CapacitiveSnoop(0.12)),
        ("wire-tap soldered at 12 cm", WireTap(0.12)),
        ("wire-tap REMOVED (solder scar remains)", WireTap(0.12).residue()),
        ("chip swapped for same model number", ChipSwap(replacement_seed=77)),
    ]
    for title, attack in studies:
        capture = itdr.capture_averaged(line, AVERAGING, modifiers=[attack])
        verdict = detector.check(capture, reference)
        print("=" * 66)
        print(title)
        print("=" * 66)
        print(ascii_profile(detector, capture, reference))
        where = (
            "n/a"
            if verdict.location_m is None
            else f"{verdict.location_m * 100:.1f} cm"
        )
        print(f"peak E_xy {verdict.peak_error:.2e}  "
              f"tampered={verdict.tampered}  located at {where}\n")


if __name__ == "__main__":
    main()
