"""Environmental robustness sweep: how the EER moves with the world.

Reproduces the section IV-C narrative as one table — room temperature, the
23->75 C oven swing, the 1-50 Hz piezo chirp, EMI from a nearby circuit —
then shows the future-work remedy: fusing fingerprints across multiple bus
wires drives the EER back down under the harshest condition.

Run:  python examples/environment_sweep.py          (reduced scale)
      REPRO_FULL_SCALE=1 python examples/...        (paper scale, slower)
"""

import os

from repro.analysis import format_table
from repro.experiments import ablation_multiwire, env_robustness, fig8_temperature
from repro.experiments.common import FULL, ExperimentScale


def main() -> None:
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        scale = FULL
    else:
        scale = ExperimentScale(n_lines=4, n_measurements=800, n_enroll=16)
    print(f"scale: {scale.n_lines} lines x {scale.n_measurements} "
          "measurements\n")

    print("running temperature sweep (Fig. 8)...")
    temp = fig8_temperature.run(scale=scale)
    print("running vibration + EMI sweeps (section IV-C)...")
    emi_scale = ExperimentScale(
        n_lines=scale.n_lines,
        n_measurements=min(scale.n_measurements, 512),
        n_enroll=scale.n_enroll,
    )
    robustness = env_robustness.run(scale=emi_scale)

    rows = [
        ["room temperature", f"{robustness.room_eer:.4%}", "< 0.06%"],
        ["oven swing 23-75 C", f"{temp.hot_eer:.4%}", "0.14%"],
        ["piezo chirp 1-50 Hz", f"{robustness.vibration_eer:.4%}", "0.27%"],
        ["EMI (async, as tested)", f"{robustness.emi_async_eer:.4%}", "0.06%"],
        [
            "EMI (synchronous ablation)",
            f"{robustness.emi_sync_eer:.4%}",
            "n/a (paper does not test)",
        ],
    ]
    print()
    print(format_table(
        ["condition", "measured EER", "paper EER"],
        rows,
        title="Environmental robustness",
    ))
    print("\ngenuine-distribution shift under heat: "
          f"{temp.genuine_shift:+.4f} (moves left, as in Fig. 8)")

    print("\nrunning multi-wire fusion under severe vibration "
          "(future-work claim)...")
    multi = ablation_multiwire.run(
        scale=ExperimentScale(
            n_lines=4,
            n_measurements=min(scale.n_measurements, 600),
            n_enroll=scale.n_enroll,
        )
    )
    print()
    print(multi.report())
    print("\n=> per-wire errors are independent, so fusing K wires "
          "multiplies error probabilities — the 'exponential' accuracy "
          "gain the paper anticipates")


if __name__ == "__main__":
    main()
