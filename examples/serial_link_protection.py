"""DIVOT on a serial I/O link — the paper's future work, running.

A 5 Gb/s 8b/10b-coded serial lane with link-layer framing and CRC carries
traffic while DIVOT endpoints at both ends monitor the conductor.  Unlike
the memory bus's clock lane, a serial lane has no free-running edge supply:
the iTDR triggers on (1,0) patterns in the transmit stream, so monitoring
is *traffic-fed* — the demo shows the trigger economics, a clean session,
and a mid-session wire-tap being caught and located.

Run:  python examples/serial_link_protection.py
"""

import numpy as np

from repro.attacks import AttackTimeline, WireTap
from repro.core import Authenticator, TamperDetector, prototype_itdr, prototype_line_factory
from repro.iolink import Frame, ProtectedSerialLink, SerialLink
from repro.txline.materials import FR4


def build_link(seed=60):
    factory = prototype_line_factory()
    line = factory.manufacture(seed=seed, name="serdes-lane0")
    link = SerialLink(line, bit_rate=5e9)
    tx = prototype_itdr(rng=np.random.default_rng(seed + 1))
    rx = prototype_itdr(rng=np.random.default_rng(seed + 2))
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=tx.probe_edge().duration,
    )
    plink = ProtectedSerialLink(
        link, tx, rx, Authenticator(0.85), detector, captures_per_check=8
    )
    plink.calibrate()
    return plink


def make_frames(n, rng):
    return [
        Frame(sequence=i % 256, payload=tuple(rng.integers(0, 256, 64)))
        for i in range(n)
    ]


def main() -> None:
    plink = build_link()
    rng = np.random.default_rng(9)

    print("=" * 64)
    print("trigger economics of a data lane")
    print("=" * 64)
    per_bit = plink.link.measured_trigger_rate() / plink.link.bit_rate
    print(f"8b/10b (1,0)-trigger rate : {per_bit:.4f} per bit "
          "(uncoded random data: 0.2500)")
    print(f"triggers per check        : {plink.triggers_per_check}")
    print(f"check period at full duty : {plink.check_period_s * 1e6:.1f} us")
    print(f"check period at 10% duty  : "
          f"{plink.link.time_for_triggers(plink.triggers_per_check, duty_cycle=0.1) * 1e6:.1f} us")
    print("=> no traffic, no probes: data-lane monitoring is traffic-fed\n")

    print("=" * 64)
    print("clean session")
    print("=" * 64)
    result = plink.send(make_frames(2000, rng))
    print(f"frames delivered   : {len(result.delivered)} / 2000")
    print(f"CRC errors         : {result.crc_errors}")
    print(f"monitoring checks  : {result.checks_run}")
    print(f"false alerts       : {len(result.alerts())}\n")

    print("=" * 64)
    print("wire-tap attached mid-session")
    print("=" * 64)
    plink2 = build_link()
    onset = plink2.check_period_s * 1.5
    timeline = AttackTimeline().add(WireTap(0.12), start_s=onset)
    result2 = plink2.send(make_frames(4000, rng), timeline=timeline)
    latency = result2.detection_latency(onset)
    print(f"tap soldered at    : 12.0 cm, {onset * 1e6:.1f} us into the session")
    print(f"alerts             : {len(result2.alerts())}")
    if latency is not None:
        located = [e for e in result2.alerts() if e.location_m is not None]
        print(f"detection latency  : {latency * 1e6:.1f} us")
        if located:
            print(f"located at         : {located[0].location_m * 100:.1f} cm")
    print(f"frames delivered   : {len(result2.delivered)} / 4000 "
          "(receiver refuses traffic once the lane fails authentication)")


if __name__ == "__main__":
    main()
