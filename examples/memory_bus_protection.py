"""The paper's Fig. 6 design in action: a DIVOT-protected SDRAM channel.

Three scenarios on a trace-driven memory system with two-way DIVOT
endpoints (CPU memory controller + DIMM control logic):

1. clean traffic — monitoring runs concurrently with zero latency cost;
2. a bus-monitor pod snoops the channel mid-run — detected and located
   within one monitoring period;
3. a cold-boot theft — the module, moved to the attacker's machine, sees a
   foreign bus fingerprint and refuses every column access.

Run:  python examples/memory_bus_protection.py
"""

import numpy as np

from repro.attacks import AttackTimeline, CapacitiveSnoop
from repro.experiments.fig6_membus import build_system
from repro.core.config import prototype_line_factory
from repro.membus import AddressMap, SDRAMDevice, TraceGenerator


def scenario_clean() -> None:
    print("=" * 64)
    print("scenario 1 — clean traffic (transparency)")
    print("=" * 64)
    system, gen = build_system(seed=10)
    requests = gen.random(12_000, write_fraction=0.4)
    protected = system.run(requests)

    # The same trace on an unprotected device, for comparison.
    amap = AddressMap(n_banks=4, n_rows=256, n_columns=128)
    plain = SDRAMDevice(address_map=amap)
    gen0 = TraceGenerator(amap, seed=13)
    plain_latency = np.mean(
        [plain.access(r).latency_cycles for r in gen0.random(12_000, write_fraction=0.4)]
    )
    print(f"requests completed : {len(protected.completed)}")
    print(f"mean latency       : {protected.mean_latency_cycles:.2f} cycles "
          f"(unprotected: {plain_latency:.2f})")
    print(f"monitoring checks  : {len(protected.events)}")
    print(f"false alerts       : {len(protected.alerts())}")
    print("=> DIVOT monitoring rides on existing bus edges: zero added "
          "latency on the data path\n")


def scenario_snoop() -> None:
    print("=" * 64)
    print("scenario 2 — bus snooping pod attaches mid-run")
    print("=" * 64)
    system, gen = build_system(seed=10)
    onset = system.capture_period_s * 1.2
    timeline = AttackTimeline().add(CapacitiveSnoop(0.12), start_s=onset)
    result = system.run(gen.random(16_000, write_fraction=0.4), timeline=timeline)
    latency = result.detection_latency(onset)
    print(f"attack onset       : {onset * 1e6:.1f} us into the run")
    print(f"alerts raised      : {len(result.alerts())}")
    if latency is not None:
        first = next(e for e in result.alerts() if e.time_s >= onset)
        where = "unlocated" if first.location_m is None else (
            f"{first.location_m * 100:.1f} cm from the controller"
        )
        print(f"detection latency  : {latency * 1e6:.1f} us "
              f"(monitoring period {system.capture_period_s * 1e6:.1f} us)")
        print(f"located            : {where} (pod actually at 12.0 cm)")
    print("=> the pod's capacitive loading dents the IIP; the error "
          "function pinpoints it\n")


def scenario_cold_boot() -> None:
    print("=" * 64)
    print("scenario 3 — cold-boot theft of the DIMM")
    print("=" * 64)
    system, gen = build_system(seed=10)
    # Secrets are written during normal operation at home.
    secrets = {addr: addr * 0x9E3779B9 % 2**31 for addr in range(64)}
    from repro.membus import MemoryOp, MemoryRequest

    writes = [MemoryRequest(MemoryOp.WRITE, a, data=v) for a, v in secrets.items()]
    system.run(writes)
    print(f"victim wrote {len(secrets)} secret words to the module")

    # The attacker freezes the module and reads it on another machine.
    foreign_bus = prototype_line_factory().manufacture(seed=777, name="attacker")
    reads = [MemoryRequest(MemoryOp.READ, a) for a in secrets]
    theft = system.simulate_cold_boot_theft(foreign_bus, reads)
    leaked = [r for r in theft.completed if r.result.ok]
    print(f"attacker attempted : {len(theft.completed)} reads")
    print(f"blocked by module  : {theft.n_blocked_accesses}")
    print(f"secrets leaked     : {len(leaked)}")
    module_state = [e.action.value for e in theft.events if e.side == "module"][:3]
    print(f"module-side actions: {module_state}")
    print("=> the module's own iTDR sees a foreign bus fingerprint and "
          "gates the column access — the frozen DRAM is unreadable off its "
          "paired bus\n")


if __name__ == "__main__":
    scenario_clean()
    scenario_snoop()
    scenario_cold_boot()
