"""Operating DIVOT at fleet scale: sharing, adaptation, multi-lane fusion.

A day-2-operations tour of the deployment machinery built on top of the
paper's core:

1. one shared measurement datapath design protecting eight buses
   round-robin, scanned by the sharded fleet executor (resources
   near-flat, scan latency linear — and an attack on any one bus flagged
   by name within a scan, byte-identically for any shard count);
2. an adaptive reference riding through years of impedance aging that
   would strand a static fingerprint;
3. multi-lane fusion catching a tap on a strobe lane the clock-lane
   monitor never measures.

``--inject-crash`` kills one shard worker mid-scan (for real — the
process pool genuinely breaks) to show the recovery ladder at work:
the scan completes with the very same records, and the telemetry
``health`` section accounts for the retry and the rebuilt pool.

``--transport`` picks how shard payloads cross the process boundary:
``shm`` moves lines, fingerprints, and result waveforms through
parent-owned shared-memory arenas (O(1) descriptors in the task
pickle), ``pickle`` is the byte-for-byte reference path, and ``auto``
(default) uses shm whenever a process pool and ``/dev/shm`` are both
in play.  The printed records are identical whichever you pick.

Run:  python examples/fleet_operations.py [--shards N] [--inject-crash]
          [--transport auto|pickle|shm]
"""

import argparse

import numpy as np

from repro.attacks import WireTap
from repro.core import (
    AdaptiveReference,
    Authenticator,
    FaultInjector,
    FaultSpec,
    Fingerprint,
    FleetScanExecutor,
    RetryPolicy,
    TamperDetector,
    prototype_itdr,
    prototype_itdr_config,
    prototype_line_factory,
)
from repro.core.divot import DivotEndpoint
from repro.env.aging import AgingModel
from repro.txline.materials import FR4

VELOCITY = FR4.velocity_at(FR4.t_ref_c)


def make_detector(itdr):
    return TamperDetector(
        threshold=2.5e-3,
        velocity=VELOCITY,
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )


def part_one_shared_datapath(
    factory, shards: int = 1, inject_crash: bool = False,
    transport: str = "auto",
) -> None:
    print("=" * 64)
    print(f"1. one datapath design, eight buses, {shards} scan shard(s)"
          + (" — with an injected worker crash" if inject_crash else ""))
    print("=" * 64)
    config = prototype_itdr_config()
    injector = None
    if inject_crash:
        # Kill the worker measuring shard 0 on its first attempt of
        # every scan; the dispatch ladder rebuilds the pool and retries
        # on the same per-bus seed streams, so nothing below changes.
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, mode="scan",
                             attempts=(0,)),)
        )
    executor = FleetScanExecutor(
        Authenticator(0.85),
        make_detector(prototype_itdr()),
        itdr_config=config,
        captures_per_check=16,
        shards=shards,
        transport=transport,
        seed=1,
        retry_policy=RetryPolicy(backoff_base_s=0.05),
        fault_injector=injector,
    )
    with executor:
        for line in factory.manufacture_batch(8, first_seed=400):
            executor.register(line)
        executor.enroll(n_captures=8)
        report = executor.resource_report()
        print(f"hardware           : {report.registers} FF / {report.luts} LUT "
              f"(one bus: 71 / 124)")
        print(f"scan period        : {executor.scan_period_s() * 1e3:.1f} ms "
              "(worst-case detection latency; shards buy scan throughput, "
              "not latency)")
        victim = executor.bus_names()[5]
        clean_scan = executor.scan()
        outcome = executor.scan(modifiers_by_bus={victim: [WireTap(0.12)]})
        flagged = [name for name, _ in outcome.alerts()]
        print(f"tap on {victim!r}  : flagged {flagged} in one scan "
              f"({outcome.backend} backend)")
        assert clean_scan.all_clear()
        # The telemetry surface: the same structured dict every DIVOT
        # workload exposes (memory bus, serial link, fleet executor).
        snap = executor.telemetry.snapshot()
        totals = snap["totals"]
        victim_cell = snap["buses"][victim]
        print(f"telemetry          : {totals['checks']} checks over two scans, "
              f"{totals['flagged']} flagged, "
              f"cadence consumed {snap['cadence']['triggers_consumed']} triggers")
        print(f"victim-bus cell    : {victim_cell['checks']} checks, "
              f"{victim_cell['flagged']} flagged, "
              f"mean score {victim_cell['score']['mean']:.3f}")
        shard_cells = {s: cell["checks"] for s, cell in snap["shards"].items()}
        print(f"per-shard checks   : {shard_cells}")
        health = snap["health"]
        print(f"dispatch health    : {health['retries']} retries, "
              f"{health['serial_fallbacks']} serial fallbacks, "
              f"{health['pool_rebuilds']} pool rebuilds over "
              f"{health['dispatches']} dispatches")
        transport_cell = health["transport"]
        print(f"shard transport    : {executor.resolved_transport()} — "
              f"{transport_cell['bytes_referenced']} bytes by arena vs "
              f"{transport_cell['bytes_moved']} by stream, "
              f"{transport_cell['worker_cache_hits']} digest-cache hits")
        if outcome.degraded:
            rungs = {h.shard: h.outcome for h in outcome.shard_health
                     if h.degraded}
            print(f"recovered shards   : {rungs} — records byte-identical "
                  "to a healthy scan by seed-stream construction")
        print(f"first alert        : t = {snap['detection']['first_alert_s'] * 1e3:.2f} ms "
              "on the shared datapath clock\n")


def part_two_adaptive_aging(factory) -> None:
    print("=" * 64)
    print("2. twelve years of aging, one rolling reference")
    print("=" * 64)
    line = factory.manufacture(seed=410)
    itdr = prototype_itdr(rng=np.random.default_rng(2))
    static = Fingerprint.from_captures(
        [itdr.capture(line) for _ in range(16)]
    )
    adaptive = AdaptiveReference(static, threshold=0.80, alpha=0.08)
    aging = AgingModel(drift_per_year=0.004)
    print("year   static-score   adaptive-score")
    for year in range(0, 13, 3):
        condition = aging.at_age(line.full_profile, float(year))
        static_scores, adaptive_scores = [], []
        for _ in range(12):
            capture = itdr.capture(line, modifiers=[condition])
            from repro.core import capture_similarity

            static_scores.append(capture_similarity(capture, static))
            adaptive_scores.append(adaptive.score(capture))
            adaptive.consider(capture)
        print(f"{year:4d}   {np.mean(static_scores):12.4f}   "
              f"{np.mean(adaptive_scores):12.4f}")
    print(f"reference updates applied: {adaptive.n_updates} "
          "(impostors can never trigger one)\n")


def part_three_multilane(factory) -> None:
    print("=" * 64)
    print("3. multi-lane fusion: the strobe lane the clock monitor misses")
    print("=" * 64)
    lanes = [
        factory.manufacture(seed=420, name="clk"),
        factory.manufacture(seed=421, name="dqs0"),
        factory.manufacture(seed=422, name="dqs1"),
    ]
    itdr = prototype_itdr(rng=np.random.default_rng(3))
    endpoint = DivotEndpoint(
        "bundle", itdr, Authenticator(0.9), make_detector(itdr),
        captures_per_check=16,
    )
    endpoint.calibrate_many(lanes, n_captures=8)
    clk_only = endpoint.monitor_capture(lanes[0])
    print(f"clock-lane-only check while dqs1 is tapped elsewhere: "
          f"{clk_only.action.value} (blind to the other lane)")
    fused = endpoint.monitor_multi(
        lanes, modifiers_by_lane={"dqs1": [WireTap(0.12)]}
    )
    where = ("unlocated" if fused.tamper.location_m is None
             else f"{fused.tamper.location_m * 100:.1f} cm along the lane")
    print(f"fused three-lane check: {fused.action.value}, tap at {where}")
    print("=> every conductor of the bundle is a fingerprint; an attacker "
          "must beat them all")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shards", type=int, default=1,
        help="fleet-scan shard count (results are identical for any value)",
    )
    parser.add_argument(
        "--inject-crash", action="store_true",
        help="kill a shard worker mid-scan to demo failure recovery "
             "(needs --shards >= 2 for a process pool)",
    )
    parser.add_argument(
        "--transport", choices=("auto", "pickle", "shm"), default="auto",
        help="shard payload transport: shared-memory arenas, the pickle "
             "reference path, or auto-selection (records are identical)",
    )
    args = parser.parse_args()
    factory = prototype_line_factory()
    part_one_shared_datapath(
        factory, shards=args.shards, inject_crash=args.inject_crash,
        transport=args.transport,
    )
    part_two_adaptive_aging(factory)
    part_three_multilane(factory)
