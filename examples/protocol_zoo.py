"""The protocol zoo — every registered bus protocol on one architecture.

A real board is not one bus: it has a DDR memory channel, a SerDes
lane, a JTAG debug header, a flash SPI link, and a management I2C bus,
each with its own framing, line rate, and trigger economics.  The
protocol registry turns each of those into a declarative
``ProtocolSpec``, and the generic ``ProtectedLink`` runs the same DIVOT
monitoring loop over any of them.  This demo walks the whole registry:

1. the registry's view of each protocol (cadence, rate, attack story);
2. a clean protected session per protocol — scheduled checks, no false
   alerts;
3. the protocol's canonical attack scenario, detected and timed;
4. a mixed-protocol fleet on the sharded executor with per-protocol
   telemetry cells.

Run:  python examples/protocol_zoo.py
"""

from repro.protocols import (
    ProtectedLink,
    build_protocol_fleet,
    default_attacks_by_bus,
    registry,
)


def show_registry() -> None:
    print("=" * 72)
    print("the protocol registry")
    print("=" * 72)
    for name in registry.load_all():
        spec = registry.get(name)
        rate = spec.bit_rate
        unit = "Gb/s" if rate >= 1e9 else ("Mb/s" if rate >= 1e6 else "kb/s")
        scale = {"Gb/s": 1e9, "Mb/s": 1e6, "kb/s": 1e3}[unit]
        print(f"{name:8s} {spec.title}")
        print(f"         cadence={spec.cadence:14s} rate={rate / scale:g} {unit}"
              f"  sides={'/'.join(spec.sides)}")
        print(f"         attack scenario: {spec.attack_label}")
    print()


def run_sessions(seed: int = 7) -> None:
    print("=" * 72)
    print("clean session, then the canonical attack, per protocol")
    print("=" * 72)
    for name in registry.load_all():
        link = ProtectedLink.from_registry(name, seed=seed)
        link.calibrate(n_captures=8)

        clean = link.session(seed=1)
        attacked, _ = link.attack_session(onset_s=0.0, seed=1)
        latency = attacked.detection_latency(0.0)
        period = link.sustained_check_period_s()

        print(f"{name:8s} clean : {clean.checks_run:3d} checks over "
              f"{clean.duration_s * 1e3:8.3f} ms, "
              f"{len(clean.alerts())} false alerts")
        verdict = ("caught in {:.1f} check periods".format(latency / period)
                   if latency is not None else "MISSED")
        print(f"         attack: {link.spec.attack_label} — "
              f"{len(attacked.alerts())} alert(s), {verdict}")
    print()


def run_fleet() -> None:
    print("=" * 72)
    print("a mixed-protocol fleet, sharded, with two buses under attack")
    print("=" * 72)
    with build_protocol_fleet(buses_per_protocol=2, seed=9,
                              shards=2, backend="serial") as executor:
        executor.enroll(n_captures=4)
        modifiers = default_attacks_by_bus(executor,
                                           protocols=["spi", "i2c"])
        outcome = executor.scan(modifiers_by_bus=modifiers)
        snapshot = executor.telemetry.snapshot()

    print(f"fleet: {len(executor.bus_protocols())} buses, "
          f"{len(set(executor.bus_protocols().values()))} protocols, "
          f"attacks on {sorted(modifiers)}")
    print(f"{'protocol':10s} {'checks':>6s} {'proceeds':>8s} "
          f"{'blocks':>6s} {'alerts':>6s}")
    for protocol, cell in sorted(snapshot["protocols"].items()):
        print(f"{protocol:10s} {cell['checks']:6d} {cell['proceeds']:8d} "
              f"{cell['blocks']:6d} {cell['alerts']:6d}")
    flagged = sorted(bus for bus, _ in outcome.alerts())
    print(f"flagged buses: {flagged}")
    print()


def main() -> None:
    show_registry()
    run_sessions()
    run_fleet()


if __name__ == "__main__":
    main()
