# Standard workflows for the DIVOT reproduction.

.PHONY: install test bench bench-full reproduce reproduce-full examples

install:
	pip install -e .[test]

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL_SCALE=1 pytest benchmarks/ --benchmark-only

reproduce:
	python -m repro.experiments.run_all

reproduce-full:
	python -m repro.experiments.run_all --full

examples:
	python examples/quickstart.py
	python examples/tamper_forensics.py
	python examples/memory_bus_protection.py
	python examples/environment_sweep.py
	python examples/serial_link_protection.py
	python examples/fleet_operations.py
